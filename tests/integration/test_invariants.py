"""System-wide invariant checks over randomized end-to-end runs.

These fuzz the full stack (driver → director → operations → control plane
→ storage) across seeds and assert conservation laws that must hold no
matter what interleaving the workload produced.
"""

import dataclasses

import pytest

from repro.controlplane.task_manager import TaskState
from repro.datacenter import Datastore, Host, VirtualMachine
from repro.sim import RandomStreams, Simulator
from repro.workloads import CLOUD_A, WorkloadDriver
from repro.workloads.arrivals import Poisson


def run_fuzz(seed, duration=2400.0, rate=0.25):
    profile = dataclasses.replace(
        CLOUD_A,
        hosts=4,
        datastores=2,
        orgs=2,
        initial_vms_per_host=3,
        arrival_factory=lambda: Poisson(rate=rate),
    )
    sim = Simulator()
    driver = WorkloadDriver(sim, RandomStreams(seed), profile)
    driver.run(duration)
    return driver


@pytest.fixture(scope="module", params=[1, 2, 3, 4, 5])
def fuzzed(request):
    return run_fuzz(request.param)


def test_every_task_reached_a_terminal_state(fuzzed):
    for task in fuzzed.server.tasks.tasks:
        assert task.state in (TaskState.SUCCESS, TaskState.ERROR)
        assert task.finished_at is not None
        assert task.finished_at >= task.started_at >= task.submitted_at


def test_datastore_usage_within_bounds(fuzzed):
    for datastore in fuzzed.server.inventory.all(Datastore):
        assert 0.0 <= datastore.used_gb <= datastore.capacity_gb + 1e-6


def test_vm_host_bidirectional_consistency(fuzzed):
    for vm in fuzzed.server.inventory.all(VirtualMachine):
        if vm.host is not None:
            assert vm in vm.host.vms
    for host in fuzzed.server.inventory.all(Host):
        for vm in host.vms:
            assert vm.host is host


def test_no_destroyed_vm_remains_in_inventory(fuzzed):
    for vm in fuzzed.server.inventory.all(VirtualMachine):
        assert vm.destroyed_at is None


def test_backing_children_counts_non_negative(fuzzed):
    for vm in fuzzed.server.inventory.all(VirtualMachine):
        for disk in vm.disks:
            for backing in disk.backing.chain():
                assert backing.children >= 0
                assert backing.size_gb >= 0


def test_resources_fully_released(fuzzed):
    server = fuzzed.server
    assert server.cpu.in_use == 0
    assert server.cpu.queue_depth == 0
    assert server.database.pool.in_use == 0
    for agent in server.agents:
        assert agent.slots.in_use == 0
        assert agent.slots.queue_depth == 0
    assert server.tasks.dispatch.in_use == 0
    assert server.tasks.queue_depth == 0


def test_locks_all_idle(fuzzed):
    for lock in fuzzed.server.locks._locks.values():
        assert lock.idle, f"lock {lock.name} still held"


def test_org_accounting_never_negative(fuzzed):
    for org in fuzzed.orgs:
        assert org.used_vms >= 0
        assert org.used_storage_gb >= 0
        assert org.used_vms <= org.quota_vms


def test_trace_is_complete_and_ordered(fuzzed):
    trace = fuzzed.trace()
    assert len(trace) == len(fuzzed.server.tasks.tasks)
    ids = [record.task_id for record in trace]
    assert len(set(ids)) == len(ids)


def test_failure_rate_is_low_under_normal_operation(fuzzed):
    trace = fuzzed.trace()
    failures = sum(1 for record in trace if not record.success)
    # The driver avoids nonsensical targets, so failures should be rare
    # (races like power-on of a VM destroyed mid-queue).
    assert failures <= max(3, 0.05 * len(trace))
