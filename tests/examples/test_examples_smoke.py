"""Smoke tests: every example script runs end-to-end with small arguments.

These execute the scripts as subprocesses (the same way a user would) and
assert a clean exit plus the landmark lines of their output.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

CASES = [
    (
        "quickstart.py",
        ["--duration", "0.25", "--profile", "classic_dc", "--seed", "3"],
        ["Operation mix", "Plane attribution", "Most-utilized"],
    ),
    (
        "clone_storm.py",
        ["--clones", "8", "--hosts", "4"],
        ["Clone storm", "linked", "full", "bottleneck"],
    ),
    (
        "selfservice_day.py",
        ["--hours", "1", "--tenants", "2", "--seed", "4"],
        ["A day of self-service", "management tasks completed"],
    ),
    (
        "scaleout_design.py",
        ["--clones", "16"],
        ["Tuning one management server", "R-F9"],
    ),
    (
        "failure_recovery.py",
        ["--vms", "4"],
        ["host failure + HA restart", "maintenance rotation"],
    ),
    (
        "whatif_replay.py",
        ["--hours", "0.2", "--seed", "2"],
        ["What-if comparison", "overall mean latency"],
    ),
]


@pytest.mark.parametrize(
    "script,args,landmarks", CASES, ids=[case[0] for case in CASES]
)
def test_example_runs_clean(script, args, landmarks):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    for landmark in landmarks:
        assert landmark in completed.stdout, (
            f"{script}: {landmark!r} missing from output:\n"
            f"{completed.stdout[:2000]}"
        )


def test_every_example_is_covered():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    covered = {case[0] for case in CASES}
    assert scripts == covered, f"uncovered examples: {scripts - covered}"
