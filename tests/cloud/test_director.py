"""Integration tests for the cloud director."""

import pytest

from repro.cloud import DeployRequest, QuotaExceeded, VAppState
from repro.datacenter import PowerState, VirtualMachine


def request(cloud, item="web-linked", count=3, name="app1"):
    return DeployRequest(
        org=cloud.org, item=cloud.catalog.get(item), vm_count=count, vapp_name=name
    )


def test_deploy_runs_all_vms(cloud):
    vapp = cloud.run_deploy(request(cloud, count=4))
    assert vapp.state == VAppState.RUNNING
    assert vapp.vm_count == 4
    assert all(vm.power_state == PowerState.ON for vm in vapp.vms)
    assert vapp.deploy_latency > 0


def test_deploy_spreads_across_hosts(cloud):
    vapp = cloud.run_deploy(request(cloud, count=4))
    hosts = {vm.host for vm in vapp.vms}
    assert len(hosts) == 4


def test_deploy_charges_quota(cloud):
    cloud.run_deploy(request(cloud, count=3))
    assert cloud.org.used_vms == 3


def test_deploy_over_quota_raises_before_operations(cloud):
    cloud.org.quota_vms = 2
    tasks_before = len(cloud.server.tasks.tasks)

    def proc():
        with pytest.raises(QuotaExceeded):
            yield from cloud.director.deploy(request(cloud, count=3))
        return True

    process = cloud.sim.spawn(proc())
    assert cloud.sim.run(until=process) is True
    assert len(cloud.server.tasks.tasks) == tasks_before


def test_vm_count_validation(cloud):
    with pytest.raises(ValueError):
        request(cloud, count=0)


def test_full_item_charges_template_size(cloud):
    cloud.run_deploy(request(cloud, item="web-full", count=2))
    assert cloud.org.used_storage_gb == pytest.approx(
        2 * cloud.template.total_disk_gb
    )


def test_linked_deploy_moves_no_bytes(cloud):
    cloud.run_deploy(request(cloud, count=5))
    assert cloud.server.copy_engine.total_bytes_written == 0


def test_delete_destroys_and_credits(cloud):
    vapp = cloud.run_deploy(request(cloud, count=3))
    vm_count_before = cloud.server.inventory.count(VirtualMachine)
    cloud.run_delete(vapp)
    assert vapp.state == VAppState.DELETED
    assert cloud.org.used_vms == 0
    assert cloud.server.inventory.count(VirtualMachine) == vm_count_before - 3


def test_delete_twice_rejected(cloud):
    vapp = cloud.run_deploy(request(cloud, count=1))
    cloud.run_delete(vapp)
    with pytest.raises(ValueError, match="already deleted"):
        cloud.run_delete(vapp)


def test_partial_failure_from_host_fault_without_retries(cloud):
    # Round-robin placement: the second VM lands on hosts[1]; injecting a
    # fault there fails exactly one member when retries are disabled.
    cloud.director.retries_per_vm = 0
    cloud.server.agent(cloud.hosts[1]).inject_failure()
    vapp = cloud.run_deploy(request(cloud, count=4))
    assert vapp.state == VAppState.PARTIAL
    assert vapp.vm_count == 3
    assert cloud.org.used_vms == 3
    assert cloud.director.metrics.counter("vm_failures").value == 1


def test_retry_masks_transient_host_fault(cloud):
    """Default behaviour: one injected fault is absorbed by re-placement."""
    cloud.server.agent(cloud.hosts[1]).inject_failure()
    vapp = cloud.run_deploy(request(cloud, count=4))
    assert vapp.state == VAppState.RUNNING
    assert vapp.vm_count == 4
    assert cloud.director.metrics.counter("vm_retries").value == 1
    # The retried VM carries its retry suffix.
    assert any("-r1" in vm.name for vm in vapp.vms)


def test_retry_excludes_failed_host(cloud):
    cloud.server.agent(cloud.hosts[0]).inject_failure()
    vapp = cloud.run_deploy(request(cloud, count=1))
    assert vapp.state == VAppState.RUNNING
    (vm,) = vapp.vms
    assert "-r1" in vm.name
    # Round-robin would re-pick hosts[0]; the exclusion forces it elsewhere.
    assert vm.host is not cloud.hosts[0]


def test_retry_backs_off_before_resubmission(cloud):
    from repro.controlplane.resilience import RetryPolicy
    from repro.faults import TransientError

    cloud.director.retry_policy = RetryPolicy(
        max_attempts=2, base_backoff_s=50.0, jitter=0.0, max_backoff_s=50.0,
        retry_on=(TransientError,),
    )
    times = []
    original = cloud.server.submit

    def recording_submit(operation, **kw):
        times.append(cloud.sim.now)
        return original(operation, **kw)

    cloud.server.submit = recording_submit
    cloud.server.agent(cloud.hosts[0]).inject_failure()
    vapp = cloud.run_deploy(request(cloud, count=1))
    assert vapp.state == VAppState.RUNNING
    assert len(times) == 2
    # The retry waited out the policy's 50s backoff, not resubmitted hot.
    assert times[1] - times[0] >= 50.0


def test_copy_failure_excludes_datastore_on_retry(cloud):
    # Full clones move bytes: a copy fault is pinned to the datastore, so
    # the retry must re-place on a different datastore, not a new host.
    cloud.server.copy_engine.faults.arm_once()
    vapp = cloud.run_deploy(request(cloud, item="web-full", count=1))
    assert vapp.state == VAppState.RUNNING
    (vm,) = vapp.vms
    assert cloud.director.metrics.counter("vm_retries").value == 1
    # Round-robin picked datastores[0] first; the retry steered away.
    assert all(disk.datastore is not cloud.datastores[0] for disk in vm.disks)


def test_breaker_engaged_host_avoided(cloud):
    from repro.controlplane.resilience import BreakerPolicy, CircuitBreaker

    agent = cloud.server.agent(cloud.hosts[0])
    agent.breaker = CircuitBreaker(
        cloud.sim, BreakerPolicy(failure_threshold=1, cooldown_s=1e9), name="esx00"
    )
    agent.breaker.record_failure()  # trip it
    vapp = cloud.run_deploy(request(cloud, count=1))
    (vm,) = vapp.vms
    # Steered around the tripped host up front: no failed attempt at all.
    assert vm.host is not cloud.hosts[0]
    assert cloud.director.metrics.counter("breaker_avoidance").value >= 1
    assert cloud.director.metrics.counter("vm_retries").value == 0


def test_retries_validation(cloud):
    from repro.cloud import CloudDirector

    with pytest.raises(ValueError):
        CloudDirector(
            cloud.server,
            cloud.cluster,
            cloud.library,
            cloud.catalog,
            retries_per_vm=-1,
        )


def test_running_vapps_listing(cloud):
    first = cloud.run_deploy(request(cloud, count=1, name="a"))
    second = cloud.run_deploy(request(cloud, count=1, name="b"))
    cloud.run_delete(first)
    assert cloud.director.running_vapps() == [second]


def test_deploy_latency_percentiles_available(cloud):
    for index in range(3):
        cloud.run_deploy(request(cloud, count=1, name=f"app{index}"))
    assert cloud.director.deploy_latency_p(0.5) > 0
