"""Tests for the DRS-style load balancer."""

import pytest

from repro.cloud import LoadBalancer
from repro.datacenter import PowerState, VirtualDisk, VirtualMachine
from repro.storage.linked_clone import create_linked_backing

from tests.operations.conftest import SmallCloud


def seed_vms(cloud, per_host):
    """Place powered-on linked clones directly (no simulated provisioning)."""
    anchor = cloud.template.disks[0].backing
    count = 0
    for host, n in zip(cloud.hosts, per_host):
        for _ in range(n):
            count += 1
            vm = cloud.server.inventory.create(
                VirtualMachine, name=f"res-{count}", power_state=PowerState.ON
            )
            backing = create_linked_backing(anchor, cloud.datastores[0])
            vm.attach_disk(VirtualDisk(label="d0", backing=backing, provisioned_gb=40.0))
            vm.place_on(host)


def run_round(cloud, balancer):
    box = {}

    def proc():
        box["moves"] = yield from balancer.rebalance_once()

    process = cloud.sim.spawn(proc())
    cloud.sim.run(until=process)
    return box["moves"]


def test_imbalance_metric():
    cloud = SmallCloud(seed=3)
    seed_vms(cloud, [6, 2, 2, 2])
    balancer = LoadBalancer(cloud.server, cloud.cluster)
    assert balancer.imbalance() == 4


def test_balanced_cluster_no_moves():
    cloud = SmallCloud(seed=3)
    seed_vms(cloud, [3, 3, 3, 3])
    balancer = LoadBalancer(cloud.server, cloud.cluster)
    assert run_round(cloud, balancer) == 0
    assert balancer.metrics.counter("moves").value == 0


def test_rebalance_moves_from_hot_to_cold():
    cloud = SmallCloud(seed=3)
    seed_vms(cloud, [8, 1, 4, 4])
    balancer = LoadBalancer(
        cloud.server, cloud.cluster, imbalance_threshold=2, max_moves_per_round=4
    )
    moves = run_round(cloud, balancer)
    assert moves >= 2
    loads = sorted(host.powered_on_vms for host in cloud.hosts)
    assert max(loads) - min(loads) < 7  # strictly better than 8-1


def test_plan_respects_move_cap():
    cloud = SmallCloud(seed=3)
    seed_vms(cloud, [10, 0, 5, 5])
    balancer = LoadBalancer(
        cloud.server, cloud.cluster, imbalance_threshold=1, max_moves_per_round=2
    )
    assert len(balancer.plan_moves()) == 2


def test_plan_is_pure():
    cloud = SmallCloud(seed=3)
    seed_vms(cloud, [8, 1, 4, 4])
    balancer = LoadBalancer(cloud.server, cloud.cluster)
    first = balancer.plan_moves()
    second = balancer.plan_moves()
    assert [(vm.entity_id, host.entity_id) for vm, host in first] == [
        (vm.entity_id, host.entity_id) for vm, host in second
    ]


def test_periodic_loop_moves_and_stops():
    cloud = SmallCloud(seed=3)
    seed_vms(cloud, [9, 1, 1, 1])
    balancer = LoadBalancer(
        cloud.server,
        cloud.cluster,
        check_interval_s=100.0,
        imbalance_threshold=1,
        max_moves_per_round=2,
    )
    balancer.start(until=1000.0)
    cloud.sim.run(until=1000.0)
    cloud.sim.run()
    assert balancer.metrics.counter("moves").value >= 4
    loads = [host.powered_on_vms for host in cloud.hosts]
    assert max(loads) - min(loads) <= 2


def test_single_host_cluster_is_noop():
    cloud = SmallCloud(seed=3, hosts=1)
    seed_vms(cloud, [5])
    balancer = LoadBalancer(cloud.server, cloud.cluster)
    assert balancer.imbalance() == 0
    assert run_round(cloud, balancer) == 0


def test_validation():
    cloud = SmallCloud(seed=3)
    with pytest.raises(ValueError):
        LoadBalancer(cloud.server, cloud.cluster, check_interval_s=0)
    with pytest.raises(ValueError):
        LoadBalancer(cloud.server, cloud.cluster, imbalance_threshold=0)
    balancer = LoadBalancer(cloud.server, cloud.cluster)
    balancer.start(until=1.0)
    with pytest.raises(RuntimeError):
        balancer.start()
