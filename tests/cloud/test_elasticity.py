"""Tests for elasticity policies triggering reconfiguration operations."""

import pytest

from repro.cloud import DeployRequest, ElasticityPolicy, SparePool
from repro.datacenter import Host


def make_policy(cloud, spare_hosts=2, **kw):
    spares = SparePool(
        hosts=[
            Host(entity_id=f"host-spare-{i}", name=f"spare{i:02d}")
            for i in range(spare_hosts)
        ]
    )
    defaults = dict(check_interval_s=60.0, vms_per_host_high=1.0)
    defaults.update(kw)
    return ElasticityPolicy(cloud.server, cloud.cluster, spares, **defaults)


def run_check(cloud, policy):
    box = {}

    def proc():
        box["actions"] = yield from policy.check_once()

    process = cloud.sim.spawn(proc())
    cloud.sim.run(until=process)
    return box["actions"]


def deploy(cloud, count, name="app"):
    return cloud.run_deploy(
        DeployRequest(
            org=cloud.org,
            item=cloud.catalog.get("web-linked"),
            vm_count=count,
            vapp_name=name,
        )
    )


def test_no_action_below_watermarks(cloud):
    policy = make_policy(cloud, vms_per_host_high=100.0)
    assert run_check(cloud, policy) == []
    assert policy.actions == []


def test_add_host_when_vm_density_high(cloud):
    deploy(cloud, count=8)  # 2 VMs/host across 4 hosts
    policy = make_policy(cloud, vms_per_host_high=1.0)
    hosts_before = len(cloud.cluster.hosts)
    actions = run_check(cloud, policy)
    assert actions == ["add_host"]
    assert len(cloud.cluster.hosts) == hosts_before + 1
    new_host = cloud.cluster.hosts[-1]
    # The joined host mounted every shared datastore.
    assert set(new_host.datastores) >= set(cloud.datastores)


def test_add_host_exhausts_spare_pool(cloud):
    deploy(cloud, count=8)
    policy = make_policy(cloud, spare_hosts=1, vms_per_host_high=0.5)
    assert run_check(cloud, policy) == ["add_host"]
    assert policy.spares.hosts_remaining == 0
    # Next round: still above watermark but no spares left.
    assert run_check(cloud, policy) == []


def test_add_datastore_when_space_low(cloud):
    for datastore in cloud.datastores:
        datastore.allocate(datastore.free_gb * 0.95)
    policy = make_policy(cloud, vms_per_host_high=1000.0, datastore_free_fraction_low=0.10)
    actions = run_check(cloud, policy)
    assert actions == ["add_datastore"]
    # Mounted everywhere → part of the shared set now.
    shared_names = {ds.name for ds in cloud.cluster.shared_datastores()}
    assert any(name.startswith("elastic-lun") for name in shared_names)


def test_watcher_fires_periodically(cloud):
    deploy(cloud, count=8)
    policy = make_policy(cloud, check_interval_s=60.0, vms_per_host_high=1.0)
    policy.start()
    cloud.sim.run(until=cloud.sim.now + 200.0)
    assert policy.metrics.counter("add_host").value >= 1
    assert policy.actions


def test_start_twice_rejected(cloud):
    policy = make_policy(cloud)
    policy.start()
    with pytest.raises(RuntimeError):
        policy.start()


def test_interval_validation(cloud):
    with pytest.raises(ValueError):
        make_policy(cloud, check_interval_s=0.0)


def test_reconfig_rate_tracks_provisioning_rate(cloud):
    """Claim 4's mechanism: more provisioning → more reconfiguration ops."""
    policy = make_policy(cloud, spare_hosts=2, vms_per_host_high=2.0)
    deploy(cloud, count=4, name="slow")  # 1 VM/host: below watermark
    assert run_check(cloud, policy) == []
    deploy(cloud, count=12, name="burst")  # 4 VMs/host: above watermark
    assert run_check(cloud, policy) == ["add_host"]
