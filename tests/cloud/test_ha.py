"""Tests for HA: host failure, restart storms, failure injection."""

import pytest

from repro.cloud import DeployRequest, HAManager, FailureInjector
from repro.datacenter import HostState, PowerState


def deploy(cloud, count, name="app"):
    return cloud.run_deploy(
        DeployRequest(
            org=cloud.org,
            item=cloud.catalog.get("web-linked"),
            vm_count=count,
            vapp_name=name,
        )
    )


def run_failure(cloud, ha, host):
    box = {}

    def proc():
        box["counts"] = yield from ha.fail_host(host)

    process = cloud.sim.spawn(proc())
    cloud.sim.run(until=process)
    return box["counts"]


def test_failed_host_vms_restart_elsewhere(cloud):
    vapp = deploy(cloud, count=4)
    victim_host = vapp.vms[0].host
    victims = [vm for vm in vapp.vms if vm.host is victim_host]
    ha = HAManager(cloud.server, cloud.cluster)
    counts = run_failure(cloud, ha, victim_host)
    assert victim_host.state == HostState.DISCONNECTED
    assert counts["restarted"] == len(victims)
    for vm in victims:
        assert vm.host is not victim_host
        assert vm.host.is_usable
        assert vm.power_state == PowerState.ON


def test_restart_latency_recorded(cloud):
    vapp = deploy(cloud, count=4)
    ha = HAManager(cloud.server, cloud.cluster)
    run_failure(cloud, ha, vapp.vms[0].host)
    recorder = ha.metrics.latency("restart_latency")
    assert recorder.count >= 1
    assert recorder.percentile(0.5) > 0


def test_powered_off_vms_stay_stranded(cloud):
    from repro.operations import PowerOff

    vapp = deploy(cloud, count=4)
    vm = vapp.vms[0]
    process = cloud.server.submit(PowerOff(vm))
    cloud.sim.run(until=process)
    ha = HAManager(cloud.server, cloud.cluster)
    counts = run_failure(cloud, ha, vm.host)
    assert counts["stranded_off"] >= 1
    assert vm.power_state == PowerState.OFF


def test_fail_host_twice_rejected(cloud):
    ha = HAManager(cloud.server, cloud.cluster)
    run_failure(cloud, ha, cloud.hosts[0])
    with pytest.raises(ValueError, match="already failed"):
        run_failure(cloud, ha, cloud.hosts[0])


def test_fail_foreign_host_rejected(cloud):
    from repro.datacenter import Host

    ha = HAManager(cloud.server, cloud.cluster)
    stranger = Host(entity_id="host-x", name="stranger")
    with pytest.raises(ValueError, match="not in cluster"):
        run_failure(cloud, ha, stranger)


def test_recover_host_rejoins(cloud):
    ha = HAManager(cloud.server, cloud.cluster)
    run_failure(cloud, ha, cloud.hosts[0])
    ha.recover_host(cloud.hosts[0])
    assert cloud.hosts[0].is_usable
    with pytest.raises(ValueError, match="not failed"):
        ha.recover_host(cloud.hosts[0])


def test_restart_storm_goes_through_control_plane(cloud):
    """The restarts are management tasks, not free actions."""
    vapp = deploy(cloud, count=8)
    tasks_before = len(cloud.server.tasks.tasks)
    ha = HAManager(cloud.server, cloud.cluster)
    counts = run_failure(cloud, ha, vapp.vms[0].host)
    new_tasks = len(cloud.server.tasks.tasks) - tasks_before
    assert new_tasks == counts["restarted"]


def test_failure_injector_fails_and_recovers(cloud):
    deploy(cloud, count=8)
    ha = HAManager(cloud.server, cloud.cluster)
    injector = FailureInjector(
        ha,
        mean_time_between_failures_s=600.0,
        recovery_time_s=300.0,
        seed_stream=cloud.streams.stream("failures"),
    )
    injector.start(until=4000.0)
    cloud.sim.run(until=4000.0)
    cloud.sim.run()
    fails = [event for event in injector.events if event[1] == "fail"]
    recovers = [event for event in injector.events if event[1] == "recover"]
    assert fails
    assert len(recovers) >= len(fails) - 1  # last failure may still be down
    # Cluster ends the run with at least one usable host.
    assert cloud.cluster.usable_hosts


def test_failure_injector_validation(cloud):
    ha = HAManager(cloud.server, cloud.cluster)
    with pytest.raises(ValueError):
        FailureInjector(ha, mean_time_between_failures_s=0.0)
