"""Fixtures for cloud-layer tests: a director over the small cloud."""

import pytest

from repro.cloud import Catalog, CatalogItem, CloudDirector, Organization, PlacementEngine

from tests.operations.conftest import SmallCloud


class SelfServiceCloud(SmallCloud):
    """SmallCloud plus the self-service layer."""

    def __init__(self, seed=42, **kw):
        super().__init__(seed=seed, **kw)
        self.catalog = Catalog("public")
        self.catalog.add(CatalogItem("web-linked", "medium-linux", linked=True))
        self.catalog.add(CatalogItem("web-full", "medium-linux", linked=False))
        self.org = Organization("acme", quota_vms=200, quota_storage_gb=50_000.0)
        self.director = CloudDirector(
            self.server,
            self.cluster,
            self.library,
            self.catalog,
            placement=PlacementEngine(policy="round_robin"),
        )

    def run_deploy(self, request):
        box = {}

        def proc():
            box["vapp"] = yield from self.director.deploy(request)

        process = self.sim.spawn(proc())
        self.sim.run(until=process)
        return box["vapp"]

    def run_delete(self, vapp):
        def proc():
            yield from self.director.delete(vapp)

        process = self.sim.spawn(proc())
        self.sim.run(until=process)


@pytest.fixture
def cloud():
    return SelfServiceCloud()
