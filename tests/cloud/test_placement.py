"""Unit tests for the placement engine."""

import random

import pytest

from repro.cloud import PlacementEngine, PlacementError
from repro.datacenter import Cluster, Datastore, Host, HostState, VirtualMachine


@pytest.fixture
def cluster():
    cluster = Cluster(entity_id="cluster-1", name="gold")
    shared = Datastore(entity_id="ds-1", name="lun0", capacity_gb=1000.0)
    for index in range(3):
        host = Host(entity_id=f"host-{index}", name=f"esx{index:02d}")
        cluster.add_host(host)
        host.mount(shared)
    return cluster


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        PlacementEngine(policy="best-fit-ish")


def test_least_loaded_prefers_empty_host(cluster):
    engine = PlacementEngine(policy="least_loaded")
    vm = VirtualMachine(entity_id="vm-1", name="busy")
    vm.place_on(cluster.hosts[0])
    chosen = engine.choose_host(cluster)
    assert chosen is not cluster.hosts[0]


def test_round_robin_cycles(cluster):
    engine = PlacementEngine(policy="round_robin")
    picks = [engine.choose_host(cluster) for _ in range(6)]
    assert picks[:3] == cluster.hosts
    assert picks[3:] == cluster.hosts


def test_random_policy_deterministic_with_seed(cluster):
    a = PlacementEngine(policy="random", rng=random.Random(5))
    b = PlacementEngine(policy="random", rng=random.Random(5))
    assert [a.choose_host(cluster).name for _ in range(5)] == [
        b.choose_host(cluster).name for _ in range(5)
    ]


def test_no_usable_hosts_raises(cluster):
    for host in cluster.hosts:
        host.state = HostState.MAINTENANCE
    with pytest.raises(PlacementError, match="no usable hosts"):
        PlacementEngine().choose_host(cluster)


def test_datastore_needs_free_space(cluster):
    engine = PlacementEngine()
    datastore = next(iter(cluster.shared_datastores()))
    datastore.allocate(995.0)
    with pytest.raises(PlacementError, match="GB free"):
        engine.choose_datastore(cluster, required_gb=50.0)


def test_datastore_least_loaded_prefers_most_free(cluster):
    extra = Datastore(entity_id="ds-2", name="lun1", capacity_gb=1000.0)
    for host in cluster.hosts:
        host.mount(extra)
    first = next(ds for ds in cluster.shared_datastores() if ds.entity_id == "ds-1")
    first.allocate(500.0)
    chosen = PlacementEngine().choose_datastore(cluster, required_gb=10.0)
    assert chosen is extra


def test_non_shared_datastore_excluded(cluster):
    private = Datastore(entity_id="ds-2", name="local", capacity_gb=1000.0)
    cluster.hosts[0].mount(private)
    chosen = PlacementEngine().choose_datastore(cluster, required_gb=10.0)
    assert chosen.entity_id == "ds-1"


def test_choose_returns_pair(cluster):
    host, datastore = PlacementEngine().choose(cluster, required_gb=1.0)
    assert host in cluster.hosts
    assert datastore in cluster.shared_datastores()


def test_exclude_datastores_redirects(cluster):
    smaller = Datastore(entity_id="ds-2", name="lun1", capacity_gb=500.0)
    for host in cluster.hosts:
        host.mount(smaller)
    engine = PlacementEngine(policy="least_loaded")
    # ds-1 is most-free and would win every round; excluding it redirects.
    assert engine.choose_datastore(cluster, 10.0).entity_id == "ds-1"
    chosen = engine.choose_datastore(cluster, 10.0, exclude_datastores={"ds-1"})
    assert chosen.entity_id == "ds-2"


def test_datastore_exclusion_is_soft(cluster):
    # Unlike host exclusion, excluding every datastore falls back to the
    # excluded candidates rather than failing placement outright.
    chosen = PlacementEngine().choose_datastore(
        cluster, 10.0, exclude_datastores={"ds-1"}
    )
    assert chosen.entity_id == "ds-1"
