"""Bus-routed federation: stealing, spillover, failover, exactly-once.

These tests drive :class:`FederatedCloud` with ``affinity_only=False``
and a mediated bus, pinning the routing mechanics the module docstring
promises: locality-preferred delivery to the healthy home, saturation
spillover to the shared pool, work-stealing by idle siblings, forwarding
pending submissions off a crashed shard, and the cross-shard
exactly-once invariant (``check_federation_exactly_once``).
"""

import pytest

from repro.cloud import FederatedCloud, Organization, VAppState
from repro.cloud.federation import SHARED_TOPIC, local_topic_name
from repro.controlplane.bus import MessageBus
from repro.controlplane.costs import ControlPlaneConfig
from repro.faults.chaos import check_federation_exactly_once
from repro.sim import RandomStreams, Simulator
from repro.sim.events import AllOf


def build(
    shards=2,
    seed=11,
    affinity_only=False,
    max_inflight=2,
    spill_queue_depth=2,
    **kw,
):
    sim = Simulator()
    streams = RandomStreams(seed)
    bus = None
    if not affinity_only:
        bus = MessageBus(sim, rng=streams.stream("fed-bus"), direct_calls=False)
    cloud = FederatedCloud(
        sim,
        streams,
        shard_count=shards,
        hosts_per_shard=4,
        config=ControlPlaneConfig(max_inflight_tasks=max_inflight),
        bus=bus,
        affinity_only=affinity_only,
        spill_queue_depth=spill_queue_depth,
        **kw,
    )
    return sim, cloud


def deploy_all(sim, cloud, orgs, count, vms=1, spacing_s=0.0):
    """Launch ``count`` concurrent deploys round-robined over ``orgs``."""
    vapps = []

    def proc(org, name, delay):
        if delay:
            yield sim.timeout(delay)
        vapp = yield from cloud.deploy(org, "small-linux-linked", vms, name)
        vapps.append(vapp)

    procs = [
        sim.spawn(
            proc(orgs[i % len(orgs)], f"app-{i}", i * spacing_s), name=f"deploy-{i}"
        )
        for i in range(count)
    ]
    sim.run(until=AllOf(sim, procs))
    sim.run()
    return vapps


def test_requires_mediated_bus():
    sim = Simulator()
    with pytest.raises(ValueError):
        FederatedCloud(
            sim, RandomStreams(1), shard_count=2, affinity_only=False, bus=None
        )
    with pytest.raises(ValueError):
        FederatedCloud(
            sim,
            RandomStreams(1),
            shard_count=2,
            affinity_only=False,
            bus=MessageBus(sim),  # direct_calls=True — not mediated
        )


def test_healthy_home_rides_local_topic():
    sim, cloud = build(shards=2, max_inflight=8, spill_queue_depth=50)
    org = Organization("acme")
    vapps = deploy_all(sim, cloud, [org], count=3)
    assert all(vapp.state == VAppState.RUNNING for vapp in vapps)
    totals = cloud.federation_totals()
    assert totals["steals"] == totals["spills"] == totals["reroutes"] == 0
    home = cloud.home_of(org)
    stats = cloud.bus.topic_stats()
    assert stats[local_topic_name(cloud.plane.shards[home].name)].delivered == 3
    assert stats.get(SHARED_TOPIC) is None or stats[SHARED_TOPIC].published == 0
    check_federation_exactly_once(cloud)


def test_saturated_home_spills_and_sibling_steals():
    sim, cloud = build(shards=2, max_inflight=1, spill_queue_depth=1)
    org = Organization("acme")  # one hot org → one hot home shard
    # Staggered arrivals: later deploys publish while the home's task
    # queue is visibly backed up, which is what trips the spill check.
    vapps = deploy_all(sim, cloud, [org], count=8, spacing_s=2.0)
    assert all(vapp.state == VAppState.RUNNING for vapp in vapps)
    home = cloud.home_of(org)
    sibling = 1 - home
    assert cloud.shard_stats[home].spills > 0
    assert cloud.shard_stats[sibling].steals > 0
    assert cloud.shard_stats[sibling].remote_completions > 0
    check_federation_exactly_once(cloud)


def test_crashed_home_reroutes_new_submissions():
    sim, cloud = build(shards=2, max_inflight=4, spill_queue_depth=50)
    org = Organization("acme")
    home = shard_of(cloud, org)
    # Crash window: the home shard rejects everything for a while.
    home_shard = cloud.plane.shards[home]
    home_shard.faults.block("test-crash")

    def heal():
        yield sim.timeout(60.0)
        home_shard.faults.unblock("test-crash")

    sim.spawn(heal(), name="heal")
    vapps = deploy_all(sim, cloud, [org], count=4)
    assert all(vapp.state == VAppState.RUNNING for vapp in vapps)
    assert cloud.shard_stats[home].reroutes == 4
    assert cloud.shard_stats[1 - home].steals == 4
    # Every VM landed on the survivor's hosts, not the crashed home's.
    survivor_hosts = set(cloud.plane.shards[1 - home].hosts)
    assert all(vm.host in survivor_hosts for vapp in vapps for vm in vapp.vms)
    check_federation_exactly_once(cloud)


def test_pending_submissions_forward_off_crashed_shard():
    from repro.cloud.federation import _FedSubmission

    sim, cloud = build(shards=2, max_inflight=4, spill_queue_depth=50)
    org = Organization("acme")
    home = shard_of(cloud, org)
    home_shard = cloud.plane.shards[home]
    # The crash hits with a submission already sitting on the home's
    # local topic (it was in flight when the window opened): the local
    # consumer must forward it to the shared pool, key intact, where the
    # survivor executes it.
    home_shard.faults.block("test-crash")
    submission = _FedSubmission(
        org=org, item_name="small-linux-linked", vm_count=1,
        vapp_name="orphan", home=home,
    )
    reply = sim.event(name="reply:orphan")
    sim.spawn(
        cloud.bus.publish(
            local_topic_name(home_shard.name),
            submission,
            key="fed-submit:test:orphan",
            reply=reply,
        ),
        name="stranded-publish",
    )
    sim.run(until=reply)
    # Heal before draining: the down shard's pool consumer polls for
    # health every interval, so a permanently-blocked shard never lets
    # the simulation quiesce.
    home_shard.faults.unblock("test-crash")
    sim.run()
    vapp = reply.value
    assert vapp.state == VAppState.RUNNING
    assert cloud.shard_stats[home].reroutes == 1
    assert cloud.shard_stats[1 - home].steals == 1
    stats = cloud.bus.topic_stats()
    assert stats[local_topic_name(home_shard.name)].forwarded == 1
    assert stats[SHARED_TOPIC].delivered == 1
    # The stolen deploy ran against the survivor's own inventory.
    survivor_hosts = set(cloud.plane.shards[1 - home].hosts)
    assert all(vm.host in survivor_hosts for vm in vapp.vms)
    check_federation_exactly_once(cloud)


def test_delete_routes_to_executing_shard():
    sim, cloud = build(shards=2, max_inflight=1, spill_queue_depth=1)
    org = Organization("acme")
    vapps = deploy_all(sim, cloud, [org], count=6, spacing_s=2.0)
    stolen = [
        vapp
        for vapp in vapps
        if any(
            vm.host in set(cloud.plane.shards[1 - cloud.home_of(org)].hosts)
            for vm in vapp.vms
        )
    ]
    assert stolen  # the point of the constrained build

    def proc(vapp):
        yield from cloud.delete(vapp)

    for vapp in vapps:
        sim.run(until=sim.spawn(proc(vapp)))
    assert all(vapp.state == VAppState.DELETED for vapp in vapps)
    assert org.used_vms == 0


def test_unresolved_submissions_empty_after_quiesce():
    sim, cloud = build(shards=2)
    org = Organization("acme")
    deploy_all(sim, cloud, [org], count=2)
    assert cloud.unresolved_submissions() == []


# -- health-aware homing (works in affinity mode too) ---------------------


def shard_of(cloud, org):
    cloud.director_for(org)
    return cloud.home_of(org)


def test_homing_skips_crashed_shard():
    sim, cloud = build(shards=3, affinity_only=True)
    cloud.plane.shards[0].faults.block("test-crash")
    org = Organization("acme")
    assert shard_of(cloud, org) == 1
    cloud.plane.shards[0].faults.unblock("test-crash")


def test_homing_prefers_least_loaded_shard():
    sim, cloud = build(shards=2, affinity_only=True, max_inflight=1)
    first = Organization("first")
    second = Organization("second")
    assert shard_of(cloud, first) == 0
    assert shard_of(cloud, second) == 1
    # Load up shard 0 mid-deploy, then home a new org: rotation points
    # back at shard 0, but least-loaded homing sends it to idle shard 1.
    def slow():
        yield from cloud.deploy(first, "small-linux-linked", 4, "busy")

    sim.spawn(slow(), name="busy-deploy")
    sim.run(until=sim.timeout(1.0))
    assert cloud.plane.load_of(cloud.plane.shards[0]) > 0
    third = Organization("third")
    assert shard_of(cloud, third) == 1
    sim.run()


def test_homing_reduces_to_round_robin_when_idle():
    _, cloud = build(shards=3, affinity_only=True)
    homes = [shard_of(cloud, Organization(f"org-{i}")) for i in range(6)]
    assert homes == [0, 1, 2, 0, 1, 2]


def test_homing_all_down_falls_back_to_rotation():
    _, cloud = build(shards=2, affinity_only=True)
    for shard in cloud.plane.shards:
        shard.faults.block("test-crash")
    org = Organization("acme")
    assert shard_of(cloud, org) == 0  # deterministic rotation pick
