"""Unit tests for tenancy, quotas, catalogs, and vApps."""

import pytest

from repro.cloud import Catalog, CatalogItem, Organization, QuotaExceeded, User, VApp, VAppState


class TestOrganization:
    def test_charge_within_quota(self):
        org = Organization("acme", quota_vms=10, quota_storage_gb=100.0)
        org.charge(3, 30.0)
        assert org.used_vms == 3
        assert org.used_storage_gb == 30.0
        assert org.vm_headroom == 7

    def test_vm_quota_enforced(self):
        org = Organization("acme", quota_vms=2)
        org.charge(2, 1.0)
        with pytest.raises(QuotaExceeded, match="VMs exceeds"):
            org.charge(1, 1.0)

    def test_storage_quota_enforced(self):
        org = Organization("acme", quota_storage_gb=50.0)
        with pytest.raises(QuotaExceeded, match="storage"):
            org.charge(1, 60.0)

    def test_check_does_not_mutate(self):
        org = Organization("acme")
        org.check(5, 100.0)
        assert org.used_vms == 0

    def test_credit_floors_at_zero(self):
        org = Organization("acme")
        org.charge(2, 20.0)
        org.credit(5, 100.0)
        assert org.used_vms == 0
        assert org.used_storage_gb == 0.0

    def test_user_string(self):
        org = Organization("acme")
        user = User("alice", org)
        assert str(user) == "acme/alice"


class TestCatalog:
    def test_add_and_get(self):
        catalog = Catalog("public")
        item = CatalogItem("web", "medium-linux", linked=True)
        catalog.add(item)
        assert catalog.get("web") is item
        assert "web" in catalog
        assert len(catalog) == 1

    def test_duplicate_item_rejected(self):
        catalog = Catalog("public")
        catalog.add(CatalogItem("web", "medium-linux"))
        with pytest.raises(ValueError, match="already has item"):
            catalog.add(CatalogItem("web", "large-windows"))

    def test_missing_item_keyerror(self):
        with pytest.raises(KeyError, match="no item"):
            Catalog("public").get("ghost")

    def test_items_sorted_by_name(self):
        catalog = Catalog("public")
        for name in ("zeta", "alpha", "mid"):
            catalog.add(CatalogItem(name, "medium-linux"))
        assert [item.name for item in catalog.items()] == ["alpha", "mid", "zeta"]


class TestVApp:
    def make(self, requested=3):
        return VApp(name="app", org=Organization("acme"), requested_vms=requested)

    def test_settle_running(self):
        vapp = self.make()
        vapp.settle(failures=0)
        assert vapp.state == VAppState.RUNNING

    def test_settle_partial(self):
        vapp = self.make()
        vapp.settle(failures=1)
        assert vapp.state == VAppState.PARTIAL

    def test_settle_failed(self):
        vapp = self.make()
        vapp.settle(failures=3)
        assert vapp.state == VAppState.FAILED

    def test_deploy_latency_requires_deployment(self):
        vapp = self.make()
        with pytest.raises(RuntimeError):
            _ = vapp.deploy_latency
        vapp.requested_at = 10.0
        vapp.deployed_at = 25.0
        assert vapp.deploy_latency == 15.0
