"""Federation neutrality: ``affinity_only=True`` must not perturb anything.

The compatibility-switch differential the federation ISSUE demands: run
the same seeded skewed deploy storm through a :class:`FederatedCloud`
with no bus at all and with a mediated bus attached but
``affinity_only=True``, and require the per-shard *task schedules* —
every task's submit/start/finish time, state, and attempt count — to be
identical. In affinity mode the federation creates no topics and spawns
no consumers, so attaching the transport must not shift a single
workload event (the same discipline as ``direct_calls`` on the bus
itself, ``tests/controlplane/test_bus_neutrality.py``).
"""

from repro.cloud import FederatedCloud, Organization, VAppState
from repro.controlplane.bus import MessageBus
from repro.sim import RandomStreams, Simulator
from repro.sim.events import AllOf


def schedule_of(cloud):
    return [
        (
            shard.name,
            task.task_id,
            task.op_type,
            task.submitted_at,
            task.started_at,
            task.finished_at,
            task.state.name,
            task.attempts,
        )
        for shard in cloud.plane.shards
        for task in shard.tasks.tasks
    ]


def run_storm(with_bus: bool, seed: int = 5):
    sim = Simulator()
    streams = RandomStreams(seed)
    bus = None
    if with_bus:
        bus = MessageBus(sim, rng=streams.stream("fed-bus"), direct_calls=False)
    cloud = FederatedCloud(
        sim, streams, shard_count=3, hosts_per_shard=4,
        bus=bus, affinity_only=True,
    )
    orgs = [Organization(f"org-{i}") for i in range(6)]
    vapps = []

    def proc(index):
        org = orgs[index % len(orgs)]
        # Skewed: org-0 fields half the deploys.
        if index % 2 == 0:
            org = orgs[0]
        vapp = yield from cloud.deploy(org, "small-linux-linked", 2, f"app-{index}")
        vapps.append(vapp)

    procs = [sim.spawn(proc(i), name=f"deploy-{i}") for i in range(12)]
    sim.run(until=AllOf(sim, procs))
    sim.run()
    return cloud, vapps


def test_schedule_identical_with_and_without_idle_bus():
    cloud_off, vapps_off = run_storm(with_bus=False)
    cloud_on, vapps_on = run_storm(with_bus=True)

    assert schedule_of(cloud_on) == schedule_of(cloud_off)
    assert [v.state for v in vapps_on] == [v.state for v in vapps_off]
    assert all(v.state == VAppState.RUNNING for v in vapps_on)
    # Not vacuous: the bus was attached and mediated, but the affinity
    # router never touched it — no topics, no consumers, no publishes.
    assert cloud_on.bus is not None and cloud_on.bus.mediated
    assert cloud_on.bus.topic_stats() == {}
    assert cloud_off.bus is None
    # And no federation counter moved in either run.
    zeros = {"steals": 0, "spills": 0, "reroutes": 0, "remote_completions": 0}
    assert cloud_on.federation_totals() == zeros
    assert cloud_off.federation_totals() == zeros
