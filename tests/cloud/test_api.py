"""Tests for the API gateway: sessions and admission throttling."""

import pytest

from repro.cloud import Organization, User
from repro.cloud.api import ApiGateway, SessionError
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def org():
    return Organization("acme")


@pytest.fixture
def user(org):
    return User("alice", org)


def drive(sim, generator):
    box = {}

    def proc():
        box["value"] = yield from generator

    process = sim.spawn(proc())
    sim.run(until=process)
    return box["value"]


class TestSessions:
    def test_login_logout_cycle(self, sim, user):
        gateway = ApiGateway(sim)
        session = gateway.login(user)
        assert gateway.active_sessions == 1
        gateway.validate(session)
        gateway.logout(session)
        assert gateway.active_sessions == 0

    def test_double_logout_rejected(self, sim, user):
        gateway = ApiGateway(sim)
        session = gateway.login(user)
        gateway.logout(session)
        with pytest.raises(SessionError):
            gateway.logout(session)

    def test_closed_session_fails_validation(self, sim, user):
        gateway = ApiGateway(sim)
        session = gateway.login(user)
        gateway.logout(session)
        with pytest.raises(SessionError, match="closed"):
            gateway.validate(session)

    def test_idle_session_expires(self, sim, user):
        gateway = ApiGateway(sim, session_idle_timeout_s=100.0)
        session = gateway.login(user)

        def proc():
            yield sim.timeout(200.0)

        process = sim.spawn(proc())
        sim.run(until=process)
        with pytest.raises(SessionError, match="expired"):
            gateway.validate(session)
        assert gateway.metrics.counter("expirations").value == 1

    def test_activity_keeps_session_alive(self, sim, user):
        gateway = ApiGateway(sim, session_idle_timeout_s=100.0)
        session = gateway.login(user)

        def proc():
            for _ in range(5):
                yield sim.timeout(90.0)
                gateway.validate(session)
            return "alive"

        process = sim.spawn(proc())
        assert sim.run(until=process) == "alive"

    def test_reap_idle(self, sim, user):
        gateway = ApiGateway(sim, session_idle_timeout_s=50.0)
        gateway.login(user)
        gateway.login(User("bob", user.org))

        def proc():
            yield sim.timeout(100.0)

        sim.run(until=sim.spawn(proc()))
        assert gateway.reap_idle() == 2
        assert gateway.active_sessions == 0


class TestAdmission:
    def test_burst_admitted_immediately(self, sim, user):
        gateway = ApiGateway(sim, requests_per_minute=60.0, burst=5.0)
        session = gateway.login(user)

        def proc():
            total_wait = 0.0
            for _ in range(5):
                total_wait += yield from gateway.admit(session)
            return total_wait

        process = sim.spawn(proc())
        assert sim.run(until=process) == 0.0

    def test_sustained_rate_throttled(self, sim, user):
        gateway = ApiGateway(sim, requests_per_minute=60.0, burst=2.0)
        session = gateway.login(user)

        def proc():
            for _ in range(10):
                yield from gateway.admit(session)
            return sim.now

        process = sim.spawn(proc())
        finish = sim.run(until=process)
        # 2 free from burst, 8 paced at 1/s.
        assert finish == pytest.approx(8.0)

    def test_orgs_have_independent_buckets(self, sim):
        gateway = ApiGateway(sim, requests_per_minute=60.0, burst=1.0)
        alice = gateway.login(User("alice", Organization("acme")))
        bob = gateway.login(User("bob", Organization("globex")))

        def proc():
            yield from gateway.admit(alice)
            yield from gateway.admit(bob)
            return sim.now

        process = sim.spawn(proc())
        assert sim.run(until=process) == 0.0

    def test_admission_wait_recorded(self, sim, user):
        gateway = ApiGateway(sim, requests_per_minute=60.0, burst=1.0)
        session = gateway.login(user)

        def proc():
            yield from gateway.admit(session)
            yield from gateway.admit(session)

        sim.run(until=sim.spawn(proc()))
        recorder = gateway.metrics.latency("admission_wait")
        assert recorder.count == 2
        assert recorder.percentile(1.0) == pytest.approx(1.0)

    def test_validation_errors(self, sim):
        with pytest.raises(ValueError):
            ApiGateway(sim, requests_per_minute=0.0)
        with pytest.raises(ValueError):
            ApiGateway(sim, burst=0.0)
        with pytest.raises(ValueError):
            ApiGateway(sim, session_idle_timeout_s=0.0)


class TestShedding:
    def test_shed_above_watermark(self, sim, user):
        from repro.cloud.api import AdmissionShed

        depth = {"value": 10.0}
        gateway = ApiGateway(sim)
        gateway.enable_shedding(lambda: depth["value"], watermark=5.0)
        session = gateway.login(user)

        def proc():
            with pytest.raises(AdmissionShed, match="shed"):
                yield from gateway.admit(session)
            return True

        assert sim.run(until=sim.spawn(proc())) is True
        assert gateway.metrics.counter("shed").value == 1
        # A shed request never reached the token bucket.
        assert gateway.metrics.counter("admitted").value == 0

    def test_admits_below_watermark(self, sim, user):
        depth = {"value": 10.0}
        gateway = ApiGateway(sim)
        gateway.enable_shedding(lambda: depth["value"], watermark=5.0)
        session = gateway.login(user)
        depth["value"] = 4.0
        wait = drive(sim, gateway.admit(session))
        assert wait == 0.0
        assert gateway.metrics.counter("shed").value == 0
        assert gateway.metrics.counter("admitted").value == 1

    def test_watermark_validation(self, sim):
        gateway = ApiGateway(sim)
        with pytest.raises(ValueError, match="watermark"):
            gateway.enable_shedding(lambda: 0.0, watermark=0.0)
        with pytest.raises(ValueError, match="shed_watermark"):
            ApiGateway(sim, shed_watermark=-1.0)
