"""Tests for the federated multi-shard self-service cloud."""

import pytest

from repro.cloud import FederatedCloud, Organization, VAppState
from repro.sim import RandomStreams, Simulator


def build(shards=2, hosts_per_shard=4, seed=3):
    sim = Simulator()
    cloud = FederatedCloud(
        sim, RandomStreams(seed), shard_count=shards, hosts_per_shard=hosts_per_shard
    )
    return sim, cloud


def run_deploy(sim, cloud, org, count=2, name="app"):
    box = {}

    def proc():
        box["vapp"] = yield from cloud.deploy(org, "small-linux-linked", count, name)

    process = sim.spawn(proc())
    sim.run(until=process)
    return box["vapp"]


def test_construction_validates():
    sim = Simulator()
    with pytest.raises(ValueError):
        FederatedCloud(sim, RandomStreams(1), shard_count=0)


def test_each_shard_has_own_infrastructure():
    _, cloud = build(shards=3)
    assert cloud.shard_count == 3
    # Shard inventories are disjoint.
    all_hosts = [
        host.entity_id for shard in cloud.plane.shards for host in shard.hosts
    ]
    assert len(all_hosts) == len(set(all_hosts)) == 12


def test_org_affinity_is_sticky():
    _, cloud = build(shards=2)
    org = Organization("acme")
    first = cloud.director_for(org)
    second = cloud.director_for(org)
    assert first is second


def test_orgs_spread_round_robin():
    _, cloud = build(shards=2)
    directors = {cloud.director_for(Organization(f"org{i}")).server.name for i in range(4)}
    assert len(directors) == 2


def test_deploy_runs_on_home_shard():
    sim, cloud = build(shards=2)
    org = Organization("acme")
    vapp = run_deploy(sim, cloud, org, count=3)
    assert vapp.state == VAppState.RUNNING
    home = cloud.director_for(org)
    # All member VMs live on the home shard's hosts.
    home_hosts = set(home.server.hosts)
    assert all(vm.host in home_hosts for vm in vapp.vms)


def test_delete_routes_home():
    sim, cloud = build(shards=2)
    org = Organization("acme")
    vapp = run_deploy(sim, cloud, org)

    def proc():
        yield from cloud.delete(vapp)

    sim.run(until=sim.spawn(proc()))
    assert vapp.state == VAppState.DELETED
    assert org.used_vms == 0


def test_deploy_latency_tracked():
    sim, cloud = build(shards=2)
    run_deploy(sim, cloud, Organization("acme"))
    assert cloud.deploy_latency_p(0.5) > 0


def test_federation_scales_concurrent_tenants():
    """Many orgs deploying at once: 4 shards beat 1 shard wall-clock."""

    def storm(shards):
        sim, cloud = build(shards=shards, hosts_per_shard=4, seed=5)
        processes = []
        for index in range(24):
            org = Organization(f"org{index % 8}")

            def proc(org=org, index=index):
                try:
                    yield from cloud.deploy(
                        org, "small-linux-linked", 2, f"app-{index}"
                    )
                except Exception:
                    pass

            processes.append(sim.spawn(proc()))
        sim.run()
        return sim.now, cloud.completed_tasks()

    slow_time, slow_done = storm(1)
    fast_time, fast_done = storm(4)
    assert slow_done == fast_done == 48
    assert fast_time < slow_time / 1.5
