"""Integration tests for the workload driver over short windows."""

import dataclasses

import pytest

from repro.sim import RandomStreams, Simulator
from repro.workloads import CLASSIC_DC, CLOUD_A, WorkloadDriver
from repro.workloads.arrivals import Poisson
from repro.workloads.profiles import CloudProfile


def small_profile(base=CLOUD_A, **overrides) -> CloudProfile:
    """Shrink a profile so driver tests run in seconds."""
    defaults = dict(
        hosts=4,
        datastores=2,
        orgs=2,
        initial_vms_per_host=3,
        arrival_factory=lambda: Poisson(rate=0.2),
    )
    defaults.update(overrides)
    return dataclasses.replace(base, **defaults)


def run_driver(profile, duration=1800.0, seed=21):
    sim = Simulator()
    driver = WorkloadDriver(sim, RandomStreams(seed), profile)
    driver.run(duration)
    return driver


def test_driver_builds_profile_shape():
    sim = Simulator()
    driver = WorkloadDriver(sim, RandomStreams(1), small_profile())
    assert len(driver.hosts) == 4
    assert len(driver.datastores) == 2
    assert len(driver.orgs) == 2
    assert len(driver.library) == 4
    seeded = driver._tenant_vms()
    assert len(seeded) == 4 * 3


def test_driver_generates_trace():
    driver = run_driver(small_profile())
    trace = driver.trace()
    assert len(trace) > 20
    # Deploy fan-out means deploys appear in the trace.
    assert any(record.op_type == "deploy" for record in trace)


def test_trace_records_are_well_formed():
    driver = run_driver(small_profile())
    for record in driver.trace():
        assert record.finished_at >= record.started_at >= record.submitted_at
        assert record.control_s >= 0
        assert record.data_s >= 0


def test_driver_deterministic_under_seed():
    def fingerprint(seed):
        driver = run_driver(small_profile(), seed=seed)
        return [(r.op_type, round(r.submitted_at, 6)) for r in driver.trace()]

    assert fingerprint(5) == fingerprint(5)
    assert fingerprint(5) != fingerprint(6)


def test_classic_profile_trace_is_quieter():
    cloud = run_driver(small_profile(), duration=3600.0)
    classic = run_driver(
        small_profile(base=CLASSIC_DC, linked_clone_fraction=0.05, vapp_size_mean=1.0),
        duration=3600.0,
    )
    # Same arrival rate by construction here, but cloud deploys fan out to
    # more per-request tasks (vapp_size_mean=3 vs 1).
    assert len(cloud.trace()) > len(classic.trace())


def test_run_duration_validation():
    sim = Simulator()
    driver = WorkloadDriver(sim, RandomStreams(1), small_profile())
    with pytest.raises(ValueError):
        driver.run(0.0)


def test_skipped_ops_recorded_when_no_targets():
    profile = small_profile(initial_vms_per_host=0, vapp_size_mean=1.0)
    # With no seeded VMs and rare deploys, many ops lack targets.
    driver = run_driver(profile, duration=900.0)
    assert isinstance(driver.skipped, dict)


def test_all_tasks_finished_after_drain():
    driver = run_driver(small_profile())
    for task in driver.server.tasks.tasks:
        assert task.finished_at is not None
