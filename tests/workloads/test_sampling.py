"""Batched sampling: bit-identical to per-event draws.

Every batched sampler must consume its stream in exactly the per-event
draw order and through exactly the per-event arithmetic, so that a driver
using batching produces a byte-identical trace. Small batch sizes force
refills mid-sequence to cover the boundary cases.
"""

import random

import pytest

from repro.workloads import (
    BatchedExponentials,
    BatchedLifetimes,
    BatchedUniforms,
    DiurnalPoisson,
    MMPPBurst,
    Poisson,
)
from repro.workloads.lifetimes import (
    CLASSIC_DC_LIFETIME,
    CLOUD_A_LIFETIME,
    CLOUD_B_LIFETIME,
)

N = 2_000


def test_batched_uniforms_identical():
    batched = BatchedUniforms(random.Random(7), batch=13)
    reference = random.Random(7)
    assert [batched.next() for _ in range(N)] == [reference.random() for _ in range(N)]


@pytest.mark.parametrize("lambd", [0.001, 0.5, 3.0])
def test_batched_exponentials_identical(lambd):
    batched = BatchedExponentials(random.Random(11), lambd, batch=7)
    reference = random.Random(11)
    assert [batched.next() for _ in range(N)] == [
        reference.expovariate(lambd) for _ in range(N)
    ]


@pytest.mark.parametrize(
    "model", [CLOUD_A_LIFETIME, CLOUD_B_LIFETIME, CLASSIC_DC_LIFETIME]
)
def test_sample_batch_identical_to_sample(model):
    batch = model.sample_batch(random.Random(3), N)
    reference = random.Random(3)
    assert batch == [model.sample(reference) for _ in range(N)]


def test_batched_lifetimes_identical_across_refills(model=CLOUD_A_LIFETIME):
    batched = BatchedLifetimes(model, random.Random(5), batch=17)
    reference = random.Random(5)
    assert [batched.next() for _ in range(N)] == [model.sample(reference) for _ in range(N)]


def _arrival_sequence_per_event(process, rng, count):
    times = []
    now = 0.0
    for _ in range(count):
        now = process.next_arrival(now, rng)
        times.append(now)
    return times


def _arrival_sequence_batched(process, rng, count, batch=19):
    adapter = process.batched(rng, batch=batch)
    times = []
    now = 0.0
    for _ in range(count):
        now = adapter.next_arrival(now)
        times.append(now)
    return times


def test_batched_poisson_identical():
    make = lambda: Poisson(rate=0.25)  # noqa: E731
    assert _arrival_sequence_batched(make(), random.Random(1), 1_000) == (
        _arrival_sequence_per_event(make(), random.Random(1), 1_000)
    )


def test_batched_diurnal_identical():
    make = lambda: DiurnalPoisson(base_rate=0.05, amplitude=0.8)  # noqa: E731
    assert _arrival_sequence_batched(make(), random.Random(2), 1_000) == (
        _arrival_sequence_per_event(make(), random.Random(2), 1_000)
    )


def test_batched_mmpp_identical():
    make = lambda: MMPPBurst(  # noqa: E731
        calm_rate=0.02, burst_rate=0.8, mean_calm_s=600.0, mean_burst_s=60.0
    )
    assert _arrival_sequence_batched(make(), random.Random(4), 1_000) == (
        _arrival_sequence_per_event(make(), random.Random(4), 1_000)
    )


def test_batched_mmpp_leaves_process_state_untouched():
    process = MMPPBurst(
        calm_rate=0.02, burst_rate=0.8, mean_calm_s=600.0, mean_burst_s=60.0
    )
    adapter = process.batched(random.Random(4))
    now = 0.0
    for _ in range(200):
        now = adapter.next_arrival(now)
    assert process._in_burst is False
    assert process._state_until == 0.0


def test_batch_must_be_positive():
    with pytest.raises(ValueError):
        BatchedUniforms(random.Random(0), batch=0)
    with pytest.raises(ValueError):
        BatchedExponentials(random.Random(0), 1.0, batch=0)
    with pytest.raises(ValueError):
        BatchedExponentials(random.Random(0), 0.0)
    with pytest.raises(ValueError):
        BatchedLifetimes(CLOUD_A_LIFETIME, random.Random(0), batch=-1)


def test_driver_trace_unchanged_by_batching():
    """End-to-end: a short scenario still renders the committed shape."""
    from repro.core.scenario import Scenario
    from repro.workloads import CLOUD_A

    result = Scenario(profile=CLOUD_A, duration_s=1_800.0, seed=0).run()
    assert len(result.trace) > 0
