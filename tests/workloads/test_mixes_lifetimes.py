"""Unit + property tests for operation mixes and lifetime models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.operations import OperationType
from repro.sim import RandomStreams
from repro.workloads import CLASSIC_DC_MIX, CLOUD_A_MIX, CLOUD_B_MIX, OperationMix
from repro.workloads.lifetimes import (
    CLASSIC_DC_LIFETIME,
    CLOUD_A_LIFETIME,
    LifetimeModel,
)


class TestOperationMix:
    def test_fractions_sum_to_one(self):
        for mix in (CLOUD_A_MIX, CLOUD_B_MIX, CLASSIC_DC_MIX):
            assert sum(mix.fractions.values()) == pytest.approx(1.0)

    def test_sampling_matches_fractions(self):
        rng = RandomStreams(3).stream("mix")
        counts = {}
        n = 40000
        for _ in range(n):
            op = CLOUD_A_MIX.sample(rng)
            counts[op] = counts.get(op, 0) + 1
        for op, fraction in CLOUD_A_MIX.items():
            assert counts.get(op, 0) / n == pytest.approx(fraction, abs=0.01)

    def test_cloud_mixes_are_provisioning_dominated(self):
        """Claim 2: clouds churn; classic datacenters don't."""
        assert CLOUD_A_MIX.provisioning_fraction() > 0.5
        assert CLOUD_B_MIX.provisioning_fraction() > 0.35
        assert CLASSIC_DC_MIX.provisioning_fraction() < 0.10

    def test_cloud_reconfiguration_heavier_than_classic(self):
        """Claim 4: reconfiguration runs more often in clouds."""
        assert (
            CLOUD_A_MIX.reconfiguration_fraction()
            > CLASSIC_DC_MIX.reconfiguration_fraction()
        )

    def test_empty_mix_rejected(self):
        with pytest.raises(ValueError):
            OperationMix({})

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            OperationMix({OperationType.DEPLOY: -1.0, OperationType.DESTROY: 2.0})

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            OperationMix({OperationType.DEPLOY: 0.0})

    def test_unnormalized_weights_are_normalized(self):
        mix = OperationMix({OperationType.DEPLOY: 3.0, OperationType.DESTROY: 1.0})
        assert mix.fraction(OperationType.DEPLOY) == pytest.approx(0.75)
        assert mix.fraction(OperationType.POWER_ON) == 0.0

    @given(
        weights=st.dictionaries(
            st.sampled_from(list(OperationType)),
            st.floats(min_value=0.01, max_value=100.0),
            min_size=1,
            max_size=8,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_any_mix_normalizes_and_samples_members(self, weights):
        mix = OperationMix(weights)
        assert sum(mix.fractions.values()) == pytest.approx(1.0)
        rng = RandomStreams(1).stream("m")
        for _ in range(50):
            assert mix.sample(rng) in weights


class TestLifetimeModel:
    def test_samples_positive(self):
        rng = RandomStreams(2).stream("life")
        for _ in range(1000):
            assert CLOUD_A_LIFETIME.sample(rng) > 0

    def test_cloud_lives_shorter_than_classic(self):
        rng_a = RandomStreams(2).stream("a")
        rng_b = RandomStreams(2).stream("b")
        cloud = sorted(CLOUD_A_LIFETIME.sample(rng_a) for _ in range(4001))
        classic = sorted(CLASSIC_DC_LIFETIME.sample(rng_b) for _ in range(4001))
        assert cloud[2000] < classic[2000] / 20  # medians far apart

    def test_tail_heavier_than_body(self):
        model = LifetimeModel(median_s=3600.0, tail_fraction=0.5, tail_scale_s=1e6)
        rng = RandomStreams(4).stream("life")
        samples = [model.sample(rng) for _ in range(2000)]
        assert max(samples) > 1e6

    def test_validation(self):
        with pytest.raises(ValueError):
            LifetimeModel(median_s=0.0)
        with pytest.raises(ValueError):
            LifetimeModel(median_s=1.0, tail_fraction=1.5)
