"""Tests for trace replay and what-if comparison."""

import dataclasses

import pytest

from repro.analysis.comparison import compare_traces, comparison_report
from repro.controlplane import ControlPlaneConfig
from repro.sim import RandomStreams, Simulator
from repro.traces import TraceRecord
from repro.workloads import CLOUD_A, WorkloadDriver
from repro.workloads.arrivals import Poisson
from repro.workloads.replay import TraceReplayer, replay_against


def small_profile():
    return dataclasses.replace(
        CLOUD_A,
        hosts=4,
        datastores=2,
        orgs=2,
        initial_vms_per_host=3,
        arrival_factory=lambda: Poisson(rate=0.2),
    )


@pytest.fixture(scope="module")
def recorded():
    sim = Simulator()
    driver = WorkloadDriver(sim, RandomStreams(17), small_profile())
    driver.run(1200.0)
    return driver.trace()


def test_replay_reissues_the_stream(recorded):
    replayer = replay_against(recorded, small_profile(), seed=5)
    assert replayer.replayed > 0
    replay_trace = replayer.trace()
    assert len(replay_trace) > 0
    # Same operation vocabulary.
    assert set(r.op_type for r in replay_trace) <= set(
        r.op_type for r in recorded
    ) | {"clone_linked", "clone_full"}


def test_replay_preserves_submission_times(recorded):
    replayer = replay_against(recorded, small_profile(), seed=5)
    # Directly-submitted ops (not deploy fan-out) land at recorded offsets.
    recorded_times = sorted(r.submitted_at for r in recorded)
    replay_times = sorted(r.submitted_at for r in replayer.trace())
    assert replay_times[0] >= recorded_times[0] - 1e-6


def test_replay_horizon_truncates(recorded):
    replayer = replay_against(recorded, small_profile(), seed=5, duration=300.0)
    full = replay_against(recorded, small_profile(), seed=5)
    assert replayer.replayed < full.replayed


def test_empty_trace_rejected():
    sim = Simulator()
    with pytest.raises(ValueError, match="empty trace"):
        TraceReplayer(sim, RandomStreams(1), small_profile(), [])


def test_unknown_op_types_counted_not_crashed(recorded):
    doctored = list(recorded[:5]) + [
        TraceRecord(
            op_type="defragment_flux_capacitor",
            submitted_at=10.0,
            started_at=10.0,
            finished_at=11.0,
            success=True,
            control_s=1.0,
            data_s=0.0,
        )
    ]
    replayer = replay_against(doctored, small_profile(), seed=5)
    assert replayer.unsupported == {"defragment_flux_capacitor": 1}


def test_whatif_better_config_reduces_latency(recorded):
    """The flagship flow: same workload, beefier control plane, faster ops.

    Compared per operation type (the aggregate mean is dominated by how
    many heavy-tailed full clones each random mixture happens to contain).
    """
    from repro.analysis.latency import latency_by_type

    baseline = replay_against(recorded, small_profile(), seed=5)
    improved = replay_against(
        recorded,
        small_profile(),
        seed=5,
        config=ControlPlaneConfig(cpu_workers=16, db_batching=True),
    )
    base_stats = latency_by_type(baseline.trace())
    improved_stats = latency_by_type(improved.trace())
    assert improved_stats["deploy"]["p50"] < base_stats["deploy"]["p50"]
    common = [
        op
        for op in set(base_stats) & set(improved_stats)
        if base_stats[op]["count"] >= 5
    ]
    better = sum(
        1 for op in common if improved_stats[op]["p50"] <= base_stats[op]["p50"]
    )
    assert better >= 0.7 * len(common)


class TestComparison:
    def test_compare_traces_structure(self, recorded):
        headers, rows = compare_traces(recorded, recorded)
        assert headers[0] == "operation"
        for row in rows:
            assert row[4] == "1.00x"  # identical traces

    def test_min_samples_filters(self, recorded):
        rare = [r for r in recorded if r.op_type == "deploy"][:1]
        headers, rows = compare_traces(rare, rare, min_samples=3)
        assert rows == []

    def test_report_contains_summary(self, recorded):
        report = comparison_report(recorded, recorded, "before", "after")
        assert "What-if comparison" in report
        assert "overall mean latency" in report
        assert "before" in report and "after" in report
