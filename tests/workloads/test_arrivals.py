"""Unit tests for arrival processes."""

import pytest

from repro.sim import RandomStreams
from repro.workloads import DiurnalPoisson, MMPPBurst, Poisson


def draw(process, count, seed=1):
    rng = RandomStreams(seed).stream("arrivals")
    times = []
    now = 0.0
    for _ in range(count):
        now = process.next_arrival(now, rng)
        times.append(now)
    return times


def test_poisson_rate_roughly_matches():
    times = draw(Poisson(rate=0.5), 5000)
    observed_rate = len(times) / times[-1]
    assert 0.45 < observed_rate < 0.55


def test_poisson_strictly_increasing():
    times = draw(Poisson(rate=1.0), 500)
    assert all(b > a for a, b in zip(times, times[1:]))


def test_poisson_validation():
    with pytest.raises(ValueError):
        Poisson(rate=0.0)


def test_diurnal_peak_denser_than_trough():
    process = DiurnalPoisson(base_rate=0.1, amplitude=0.8, peak_at_s=12 * 3600.0)
    times = draw(process, 40000, seed=3)
    one_day = [t % 86400 for t in times if t < 10 * 86400]
    peak_window = sum(1 for t in one_day if 10 * 3600 <= t < 14 * 3600)
    trough_window = sum(1 for t in one_day if 22 * 3600 <= t or t < 2 * 3600)
    assert peak_window > 3 * trough_window


def test_diurnal_rate_at_peak_and_trough():
    process = DiurnalPoisson(base_rate=1.0, amplitude=0.5, peak_at_s=0.0)
    assert process.rate_at(0.0) == pytest.approx(1.5)
    assert process.rate_at(43200.0) == pytest.approx(0.5)


def test_diurnal_validation():
    with pytest.raises(ValueError):
        DiurnalPoisson(base_rate=0.0)
    with pytest.raises(ValueError):
        DiurnalPoisson(base_rate=1.0, amplitude=1.0)


def test_mmpp_mean_rate_between_states():
    process = MMPPBurst(calm_rate=0.01, burst_rate=1.0, mean_calm_s=900, mean_burst_s=100)
    assert 0.01 < process.mean_rate() < 1.0


def test_mmpp_produces_bursts():
    process = MMPPBurst(
        calm_rate=0.005, burst_rate=2.0, mean_calm_s=1000.0, mean_burst_s=200.0
    )
    times = draw(process, 5000, seed=5)
    gaps = [b - a for a, b in zip(times, times[1:])]
    short = sum(1 for gap in gaps if gap < 2.0)
    long = sum(1 for gap in gaps if gap > 50.0)
    # Bimodal inter-arrivals: many short gaps (bursts) and some very long.
    assert short > 1000
    assert long > 10


def test_mmpp_validation():
    with pytest.raises(ValueError):
        MMPPBurst(calm_rate=0.0, burst_rate=1.0, mean_calm_s=1, mean_burst_s=1)
    with pytest.raises(ValueError):
        MMPPBurst(calm_rate=1.0, burst_rate=0.5, mean_calm_s=1, mean_burst_s=1)


def test_arrivals_deterministic_under_seed():
    assert draw(Poisson(1.0), 100, seed=9) == draw(Poisson(1.0), 100, seed=9)
