"""Unit tests for VMs, disks, backing chains, and snapshots."""

import pytest

from repro.datacenter import (
    Datastore,
    DiskBacking,
    Host,
    PowerState,
    VirtualDisk,
    VirtualMachine,
)


@pytest.fixture
def datastore():
    return Datastore(entity_id="ds-1", name="lun01", capacity_gb=1000.0)


def make_vm(n=1, **kw):
    return VirtualMachine(entity_id=f"vm-{n}", name=f"vm{n}", **kw)


def test_base_backing_chain_depth_is_one(datastore):
    backing = DiskBacking(datastore=datastore, size_gb=40.0)
    assert backing.chain_depth == 1
    assert backing.chain() == [backing]
    assert backing.logical_size_gb == 40.0


def test_linked_chain_depth_and_logical_size(datastore):
    base = DiskBacking(datastore=datastore, size_gb=40.0, read_only=True)
    delta = DiskBacking(datastore=datastore, size_gb=2.0, parent=base)
    leaf = DiskBacking(datastore=datastore, size_gb=0.5, parent=delta)
    assert leaf.chain_depth == 3
    assert leaf.logical_size_gb == pytest.approx(42.5)
    assert base.children == 1
    assert delta.children == 1


def test_backing_rejects_negative_size(datastore):
    with pytest.raises(ValueError):
        DiskBacking(datastore=datastore, size_gb=-1.0)


def test_vm_disk_accounting(datastore):
    vm = make_vm()
    base = DiskBacking(datastore=datastore, size_gb=40.0, read_only=True)
    delta = DiskBacking(datastore=datastore, size_gb=1.0, parent=base)
    vm.attach_disk(VirtualDisk(label="disk-0", backing=delta, provisioned_gb=40.0))
    assert vm.total_disk_gb == 40.0
    assert vm.allocated_disk_gb == 1.0  # only the delta is unique to this VM
    assert vm.max_chain_depth == 2
    assert vm.is_linked_clone


def test_full_clone_vm_is_not_linked(datastore):
    vm = make_vm()
    backing = DiskBacking(datastore=datastore, size_gb=40.0)
    vm.attach_disk(VirtualDisk(label="disk-0", backing=backing, provisioned_gb=40.0))
    assert not vm.is_linked_clone
    assert vm.allocated_disk_gb == 40.0


def test_vm_placement_moves_between_hosts():
    vm = make_vm()
    host_a = Host(entity_id="host-1", name="a")
    host_b = Host(entity_id="host-2", name="b")
    vm.place_on(host_a)
    assert vm in host_a.vms
    vm.place_on(host_b)
    assert vm not in host_a.vms
    assert vm in host_b.vms
    vm.evacuate()
    assert vm.host is None
    assert vm not in host_b.vms


def test_power_state_helpers():
    vm = make_vm()
    assert not vm.is_powered_on
    vm.power_state = PowerState.ON
    assert vm.is_powered_on


def test_host_powered_on_count():
    host = Host(entity_id="host-1", name="a")
    on = make_vm(1, power_state=PowerState.ON)
    off = make_vm(2)
    on.place_on(host)
    off.place_on(host)
    assert host.powered_on_vms == 1


def test_snapshot_freezes_leaf_and_adds_delta(datastore):
    vm = make_vm()
    base = DiskBacking(datastore=datastore, size_gb=40.0)
    vm.attach_disk(VirtualDisk(label="disk-0", backing=base, provisioned_gb=40.0))
    snapshot = vm.take_snapshot("pre-upgrade")
    assert base.read_only
    assert snapshot.backings == [base]
    assert vm.disks[0].backing is not base
    assert vm.disks[0].backing.parent is base
    assert vm.max_chain_depth == 2


def test_multiple_snapshots_deepen_chain(datastore):
    vm = make_vm()
    base = DiskBacking(datastore=datastore, size_gb=40.0)
    vm.attach_disk(VirtualDisk(label="disk-0", backing=base, provisioned_gb=40.0))
    for index in range(3):
        vm.take_snapshot(f"snap-{index}")
    assert vm.max_chain_depth == 4
    assert len(vm.snapshots) == 3


def test_empty_vm_chain_depth_zero():
    assert make_vm().max_chain_depth == 0
