"""Unit tests for the inventory registry and template library."""

import pytest

from repro.datacenter import (
    Datastore,
    Host,
    Inventory,
    InventoryError,
    TemplateLibrary,
    TemplateSpec,
    VirtualMachine,
)
from repro.datacenter.templates import MEDIUM_LINUX


@pytest.fixture
def inventory():
    return Inventory()


def test_ids_are_sequential_per_type(inventory):
    first = inventory.create(Host, name="esx01")
    second = inventory.create(Host, name="esx02")
    vm = inventory.create(VirtualMachine, name="vm1")
    assert first.entity_id == "host-1"
    assert second.entity_id == "host-2"
    assert vm.entity_id == "vm-1"


def test_register_duplicate_id_rejected(inventory):
    host = inventory.create(Host, name="esx01")
    with pytest.raises(InventoryError):
        inventory.register(host)


def test_get_and_contains(inventory):
    host = inventory.create(Host, name="esx01")
    assert inventory.get("host-1") is host
    assert "host-1" in inventory
    assert "host-99" not in inventory
    with pytest.raises(InventoryError):
        inventory.get("host-99")


def test_find_by_name(inventory):
    inventory.create(Host, name="esx01")
    target = inventory.create(Host, name="esx02")
    assert inventory.find(Host, "esx02") is target
    with pytest.raises(InventoryError):
        inventory.find(Host, "missing")


def test_unregister_removes(inventory):
    host = inventory.create(Host, name="esx01")
    inventory.unregister(host)
    assert "host-1" not in inventory
    with pytest.raises(InventoryError):
        inventory.unregister(host)


def test_counts_and_len(inventory):
    inventory.create(Host, name="a")
    inventory.create(VirtualMachine, name="v")
    assert inventory.count(Host) == 1
    assert inventory.count(VirtualMachine) == 1
    assert len(inventory) == 2


def test_mutations_counted(inventory):
    host = inventory.create(Host, name="a")
    inventory.unregister(host)
    assert inventory.mutations == 2


def test_size_summary(inventory):
    inventory.create(Host, name="a")
    inventory.create(VirtualMachine, name="v")
    summary = inventory.size_summary()
    assert summary["host"] == 1
    assert summary["vm"] == 1
    assert summary["ds"] == 0


def test_footprint_counts_mounts(inventory):
    host_a = inventory.create(Host, name="a")
    host_b = inventory.create(Host, name="b")
    datastore = inventory.create(Datastore, name="lun", capacity_gb=100.0)
    host_a.mount(datastore)
    host_b.mount(datastore)
    # 3 entities + 2 mounts
    assert inventory.footprint() == 5


def test_next_id_unknown_type(inventory):
    with pytest.raises(InventoryError):
        inventory.next_id(str)


class TestTemplateLibrary:
    def test_publish_creates_template_vm(self, inventory):
        datastore = inventory.create(Datastore, name="lun", capacity_gb=500.0)
        library = TemplateLibrary(inventory)
        template = library.publish(MEDIUM_LINUX, datastore)
        assert template.is_template
        assert template.total_disk_gb == MEDIUM_LINUX.disk_gb
        assert template.disks[0].backing.read_only
        assert datastore.used_gb == MEDIUM_LINUX.disk_gb
        assert library.get(MEDIUM_LINUX.name) is template
        assert library.names() == [MEDIUM_LINUX.name]
        assert len(library) == 1

    def test_publish_twice_rejected(self, inventory):
        datastore = inventory.create(Datastore, name="lun", capacity_gb=500.0)
        library = TemplateLibrary(inventory)
        library.publish(MEDIUM_LINUX, datastore)
        with pytest.raises(ValueError):
            library.publish(MEDIUM_LINUX, datastore)

    def test_get_missing_template(self, inventory):
        library = TemplateLibrary(inventory)
        with pytest.raises(KeyError):
            library.get("nope")

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            TemplateSpec("bad", vcpus=0)
        with pytest.raises(ValueError):
            TemplateSpec("bad", disk_gb=0.0)
        with pytest.raises(ValueError):
            TemplateSpec("bad", memory_gb=-1.0)
