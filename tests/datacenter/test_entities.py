"""Unit tests for infrastructure entities."""

import pytest

from repro.datacenter import Cluster, Datacenter, Datastore, Host, HostState, Network
from repro.datacenter.entities import CapacityError


def make_host(n=1):
    return Host(entity_id=f"host-{n}", name=f"esx{n:02d}")


def make_datastore(n=1, capacity=1000.0):
    return Datastore(entity_id=f"ds-{n}", name=f"lun{n:02d}", capacity_gb=capacity)


def test_entity_identity_is_by_id():
    a = make_host(1)
    b = Host(entity_id="host-1", name="different-name")
    assert a == b
    assert hash(a) == hash(b)
    assert a != make_host(2)


def test_datastore_allocate_and_reclaim():
    datastore = make_datastore(capacity=100.0)
    datastore.allocate(30.0)
    assert datastore.free_gb == pytest.approx(70.0)
    datastore.reclaim(10.0)
    assert datastore.used_gb == pytest.approx(20.0)


def test_datastore_over_allocation_raises():
    datastore = make_datastore(capacity=10.0)
    with pytest.raises(CapacityError):
        datastore.allocate(11.0)


def test_datastore_rejects_negative_amounts():
    datastore = make_datastore()
    with pytest.raises(ValueError):
        datastore.allocate(-1.0)
    with pytest.raises(ValueError):
        datastore.reclaim(-1.0)


def test_datastore_reclaim_floors_at_zero():
    datastore = make_datastore()
    datastore.allocate(5.0)
    datastore.reclaim(50.0)
    assert datastore.used_gb == 0.0


def test_host_mount_is_bidirectional():
    host = make_host()
    datastore = make_datastore()
    host.mount(datastore)
    assert datastore in host.datastores
    assert host in datastore.hosts
    host.unmount(datastore)
    assert datastore not in host.datastores
    assert host not in datastore.hosts


def test_host_usability_follows_state():
    host = make_host()
    assert host.is_usable
    host.state = HostState.MAINTENANCE
    assert not host.is_usable
    host.state = HostState.DISCONNECTED
    assert not host.is_usable


def test_cluster_add_remove_host():
    cluster = Cluster(entity_id="cluster-1", name="gold")
    host = make_host()
    cluster.add_host(host)
    assert host.cluster is cluster
    assert cluster.usable_hosts == [host]
    with pytest.raises(ValueError):
        cluster.add_host(host)
    cluster.remove_host(host)
    assert host.cluster is None


def test_cluster_shared_datastores_intersection():
    cluster = Cluster(entity_id="cluster-1", name="gold")
    ds_shared = make_datastore(1)
    ds_local = make_datastore(2)
    for n in range(2):
        host = make_host(n)
        cluster.add_host(host)
        host.mount(ds_shared)
    cluster.hosts[0].mount(ds_local)
    assert cluster.shared_datastores() == {ds_shared}


def test_cluster_shared_datastores_skips_maintenance_hosts():
    cluster = Cluster(entity_id="cluster-1", name="gold")
    ds = make_datastore()
    healthy = make_host(1)
    broken = make_host(2)
    cluster.add_host(healthy)
    cluster.add_host(broken)
    healthy.mount(ds)
    broken.state = HostState.MAINTENANCE
    assert cluster.shared_datastores() == {ds}


def test_cluster_shared_datastores_empty_cluster():
    cluster = Cluster(entity_id="cluster-1", name="empty")
    assert cluster.shared_datastores() == set()


def test_datacenter_aggregates_hosts_and_vms():
    datacenter = Datacenter(entity_id="dc-1", name="dc")
    cluster = Cluster(entity_id="cluster-1", name="gold")
    datacenter.add_cluster(cluster)
    host = make_host()
    cluster.add_host(host)
    assert datacenter.hosts == [host]
    assert datacenter.vms == []


def test_network_defaults():
    network = Network(entity_id="net-1", name="vm-net")
    assert network.vlan == 0
