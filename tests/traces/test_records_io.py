"""Tests for trace records, IO round-trips, and filters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces import (
    TraceRecord,
    by_op_type,
    by_success,
    in_window,
    provisioning_only,
    read_csv,
    read_jsonl,
    write_csv,
    write_jsonl,
)


def make_record(op="deploy", submitted=0.0, started=1.0, finished=5.0, success=True, **kw):
    return TraceRecord(
        op_type=op,
        submitted_at=submitted,
        started_at=started,
        finished_at=finished,
        success=success,
        control_s=kw.pop("control_s", 2.0),
        data_s=kw.pop("data_s", 1.0),
        **kw,
    )


def test_derived_metrics():
    record = make_record()
    assert record.latency == 5.0
    assert record.queue_wait == 1.0
    assert record.service_time == 4.0


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(ValueError, match="unknown trace fields"):
        TraceRecord.from_dict({"op_type": "x", "bogus": 1})


def test_csv_roundtrip(tmp_path):
    records = [make_record(op=f"op{i}", submitted=float(i)) for i in range(5)]
    path = tmp_path / "trace.csv"
    assert write_csv(records, path) == 5
    assert read_csv(path) == records


def test_jsonl_roundtrip(tmp_path):
    records = [make_record(op=f"op{i}", success=bool(i % 2)) for i in range(5)]
    path = tmp_path / "trace.jsonl"
    assert write_jsonl(records, path) == 5
    assert read_jsonl(path) == records


def test_jsonl_skips_blank_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    write_jsonl([make_record()], path)
    with open(path, "a") as handle:
        handle.write("\n\n")
    assert len(read_jsonl(path)) == 1


@given(
    submitted=st.floats(min_value=0, max_value=1e6),
    service=st.floats(min_value=0, max_value=1e4),
    wait=st.floats(min_value=0, max_value=1e4),
    success=st.booleans(),
)
@settings(max_examples=50, deadline=None)
def test_csv_roundtrip_property(submitted, service, wait, success):
    import tempfile
    import pathlib

    record = make_record(
        submitted=submitted,
        started=submitted + wait,
        finished=submitted + wait + service,
        success=success,
    )
    with tempfile.TemporaryDirectory() as tmp:
        path = pathlib.Path(tmp) / "prop.csv"
        write_csv([record], path)
        assert read_csv(path) == [record]


class TestFilters:
    def records(self):
        return [
            make_record(op="deploy", submitted=0.0),
            make_record(op="power_on", submitted=10.0, success=False),
            make_record(op="destroy", submitted=20.0),
            make_record(op="rescan_datastore", submitted=30.0),
        ]

    def test_by_op_type(self):
        out = by_op_type(self.records(), "deploy", "destroy")
        assert [r.op_type for r in out] == ["deploy", "destroy"]

    def test_by_success(self):
        assert len(by_success(self.records())) == 3
        assert len(by_success(self.records(), success=False)) == 1

    def test_in_window(self):
        out = in_window(self.records(), 5.0, 25.0)
        assert [r.op_type for r in out] == ["power_on", "destroy"]

    def test_in_window_validation(self):
        with pytest.raises(ValueError):
            in_window(self.records(), 10.0, 5.0)

    def test_provisioning_only(self):
        out = provisioning_only(self.records())
        assert {r.op_type for r in out} == {"deploy", "destroy"}
