"""Tail-based trace retention: keep-policies, budget eviction, reservoir.

The sampler defers the keep/drop decision until a trace's root finishes,
then classifies (error > retry > slow > normal) and holds the retained
set under a global span budget. These tests pin the classification
rules, the eviction order (least diagnostic first, oldest first within a
class), the protect-the-newcomer budget invariant, the boundedness of
the normal reservoir, and the SampledTracer's bookkeeping against the
plain keep-everything tracer.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.tracing import (
    KEEP_CLASSES,
    RetentionPolicy,
    SampledTracer,
    TailSampler,
    Tracer,
)
from repro.tracing.sampling import (
    EVICTION_ORDER,
    KEEP_ERROR,
    KEEP_NORMAL,
    KEEP_RETRY,
    KEEP_SLOW,
)


@pytest.fixture
def sim():
    return Simulator()


def seal_trace(sim, tracer, name, child_count=2, duration=1.0, error=None,
               attempts=1):
    """Open a root with children, advance time, finish everything."""
    root = tracer.start_trace(name, phase="task")
    if attempts > 1:
        root.annotate("attempts", attempts)
    children = [root.child(f"{name}-c{i}", phase="db") for i in range(child_count)]
    sim._now += duration
    for child in children:
        child.finish()
    root.finish(error=error)
    return root


class TestClassification:
    def test_error_anywhere_wins(self, sim):
        tracer = Tracer(sim)
        sampler = TailSampler()
        root = tracer.start_trace("r", phase="task")
        child = root.child("c", phase="db")
        sim._now = 1.0
        child.finish(error="Boom")
        root.finish()
        assert sampler.classify(root, [root, child]) == KEEP_ERROR

    def test_retry_from_attempts_tag(self, sim):
        tracer = Tracer(sim)
        sampler = TailSampler()
        root = seal_trace(sim, tracer, "r", attempts=3)
        assert sampler.classify(root, tracer.spans) == KEEP_RETRY

    def test_retry_from_retry_phase_span(self, sim):
        tracer = Tracer(sim)
        sampler = TailSampler()
        root = tracer.start_trace("r", phase="task")
        backoff = root.child("backoff", phase="retry")
        sim._now = 1.0
        backoff.finish()
        root.finish()
        assert sampler.classify(root, [root, backoff]) == KEEP_RETRY

    def test_slow_needs_armed_threshold(self, sim):
        tracer = Tracer(sim)
        policy = RetentionPolicy(min_slow_samples=5, slow_quantile=0.9)
        sampler = TailSampler(policy)
        assert sampler.slow_threshold() is None
        # Feed the duration distribution: many fast roots, then one slow.
        for index in range(10):
            root = seal_trace(sim, tracer, f"fast{index}", duration=1.0)
            sampler.offer(root, [root], sealed_at=sim.now)
        assert sampler.slow_threshold() is not None
        slow_root = seal_trace(sim, tracer, "slow", duration=500.0)
        assert sampler.classify(slow_root, [slow_root]) == KEEP_SLOW

    def test_healthy_fast_trace_is_normal(self, sim):
        tracer = Tracer(sim)
        sampler = TailSampler()
        root = seal_trace(sim, tracer, "r")
        assert sampler.classify(root, tracer.spans) == KEEP_NORMAL

    def test_own_duration_never_arms_its_own_threshold(self, sim):
        # The first min_slow_samples roots can never be classified slow,
        # even if identical — record happens after classify.
        tracer = Tracer(sim)
        sampler = TailSampler(RetentionPolicy(min_slow_samples=3))
        keeps = []
        for index in range(3):
            root = seal_trace(sim, tracer, f"r{index}", duration=100.0)
            tree, _ = sampler.offer(root, [root], sealed_at=sim.now)
            keeps.append(tree.keep if tree else None)
        assert KEEP_SLOW not in keeps


class TestBudgetEviction:
    def _tree(self, sim, tracer, name, **kwargs):
        root = seal_trace(sim, tracer, name, **kwargs)
        spans = [root] + tracer.children(root)
        return root, spans

    def test_normals_evicted_before_errors(self, sim):
        tracer = Tracer(sim)
        # Budget of 6 spans = two 3-span trees.
        sampler = TailSampler(
            RetentionPolicy(span_budget=6, normal_reservoir=16)
        )
        root_n, spans_n = self._tree(sim, tracer, "normal")
        sampler.offer(root_n, spans_n, sealed_at=sim.now)
        root_e, spans_e = self._tree(sim, tracer, "err", error="Boom")
        sampler.offer(root_e, spans_e, sealed_at=sim.now)
        root_e2, spans_e2 = self._tree(sim, tracer, "err2", error="Boom")
        _, evicted = sampler.offer(root_e2, spans_e2, sealed_at=sim.now)
        # The normal tree went, both errors stayed.
        assert [tree.keep for tree in evicted] == [KEEP_NORMAL]
        assert {tree.keep for tree in sampler.trees()} == {KEEP_ERROR}
        assert sampler.span_count <= 6

    def test_oldest_within_class_goes_first(self, sim):
        tracer = Tracer(sim)
        sampler = TailSampler(
            RetentionPolicy(span_budget=9, normal_reservoir=16)
        )
        roots = []
        for index in range(4):
            root, spans = self._tree(sim, tracer, f"n{index}")
            sampler.offer(root, spans, sealed_at=sim.now)
            roots.append(root)
        retained_ids = {tree.trace_id for tree in sampler.trees()}
        # 4 trees x 3 spans > 9: the first-sealed tree was evicted.
        assert roots[0].context.trace_id not in retained_ids
        assert roots[-1].context.trace_id in retained_ids

    def test_oversized_tree_still_admitted(self, sim):
        tracer = Tracer(sim)
        sampler = TailSampler(RetentionPolicy(span_budget=4))
        root, spans = self._tree(sim, tracer, "big", child_count=9)
        tree, _ = sampler.offer(root, spans, sealed_at=sim.now)
        assert tree is not None
        assert sampler.span_count == 10  # over budget, by design

    def test_eviction_order_constant_covers_all_classes(self):
        assert set(EVICTION_ORDER) == set(KEEP_CLASSES)
        assert EVICTION_ORDER[0] == KEEP_NORMAL
        assert EVICTION_ORDER[-1] == KEEP_ERROR


class TestNormalReservoir:
    def test_reservoir_is_bounded(self, sim):
        tracer = Tracer(sim)
        sampler = TailSampler(
            RetentionPolicy(span_budget=10_000, normal_reservoir=4)
        )
        for index in range(100):
            root = seal_trace(sim, tracer, f"n{index}", child_count=0)
            sampler.offer(root, [root], sealed_at=sim.now)
        assert sampler.counts_by_class()[KEEP_NORMAL] == 4
        assert sampler.offered == 100
        assert sampler.admitted + sampler.dropped == 100

    def test_zero_reservoir_drops_all_normals(self, sim):
        tracer = Tracer(sim)
        sampler = TailSampler(
            RetentionPolicy(span_budget=10_000, normal_reservoir=0)
        )
        for index in range(10):
            root = seal_trace(sim, tracer, f"n{index}", child_count=0)
            tree, _ = sampler.offer(root, [root], sealed_at=sim.now)
            assert tree is None
        assert sampler.tree_count == 0

    def test_private_rng_not_simulation_stream(self):
        # Same seed, same decisions — reproducible independently of any
        # simulator state.
        results = []
        for _ in range(2):
            sim = Simulator()
            tracer = Tracer(sim)
            sampler = TailSampler(
                RetentionPolicy(span_budget=10_000, normal_reservoir=3,
                                reservoir_seed=7)
            )
            for index in range(50):
                root = seal_trace(sim, tracer, f"n{index}", child_count=0)
                sampler.offer(root, [root], sealed_at=sim.now)
            results.append(sorted(t.root.name for t in sampler.trees()))
        assert results[0] == results[1]


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["error", "retry", "normal"]),
            st.integers(min_value=0, max_value=6),  # children
        ),
        min_size=1,
        max_size=40,
    ),
    st.integers(min_value=1, max_value=30),  # span budget
)
def test_sampler_invariants_hold_under_any_offer_sequence(traces, budget):
    """Property: span accounting exact, budget bounded by the biggest tree."""
    sim = Simulator()
    tracer = Tracer(sim)
    sampler = TailSampler(
        RetentionPolicy(span_budget=budget, normal_reservoir=8)
    )
    max_tree = 0
    for index, (flavor, child_count) in enumerate(traces):
        root = seal_trace(
            sim,
            tracer,
            f"t{index}",
            child_count=child_count,
            error="Boom" if flavor == "error" else None,
            attempts=3 if flavor == "retry" else 1,
        )
        spans = [root] + tracer.children(root)
        max_tree = max(max_tree, len(spans))
        sampler.offer(root, spans, sealed_at=sim.now)
        # Exact accounting: span_count is the sum over retained trees.
        assert sampler.span_count == sum(
            len(tree.spans) for tree in sampler.trees()
        )
        # Bounded: never above budget unless a single tree is bigger.
        assert sampler.span_count <= max(budget, max_tree)
    assert sampler.offered == len(traces)
    assert sampler.offered_spans == sum(1 + c for _, c in traces)
    # Offered trees are admitted or dropped; retained = admitted - evicted.
    assert sampler.admitted + sampler.dropped == sampler.offered
    assert sampler.tree_count == sampler.admitted - sampler.evicted


class TestSampledTracer:
    def test_drop_in_replacement_shape(self, sim):
        tracer = SampledTracer(sim)
        root = seal_trace(sim, tracer, "r")
        assert root in tracer.spans
        assert tracer.retained_tree(root.context.trace_id) is not None

    def test_open_traces_buffer_until_root_finishes(self, sim):
        tracer = SampledTracer(sim, RetentionPolicy(normal_reservoir=0))
        root = tracer.start_trace("r", phase="task")
        child = root.child("c", phase="db")
        sim._now = 1.0
        child.finish()
        # Root still open: everything visible, nothing offered yet.
        assert tracer.sampler.offered == 0
        assert set(tracer.spans) == {root, child}
        root.finish()
        # Sealed and dropped (reservoir 0, healthy trace): gone entirely.
        assert tracer.sampler.offered == 1
        assert tracer.spans == []
        assert tracer.children(root) == []

    def test_retained_spans_bounded_while_plain_tracer_grows(self, sim):
        plain = Tracer(sim)
        budget = 12
        sampled = SampledTracer(
            sim, RetentionPolicy(span_budget=budget, normal_reservoir=2)
        )
        for index in range(100):
            seal_trace(sim, plain, f"p{index}")
            seal_trace(sim, sampled, f"s{index}")
        assert len(plain.spans) == 300
        assert sampled.retained_span_count <= budget
        summary = sampled.retention_summary()
        assert summary["offered"] == 100
        assert summary["offered_spans"] == 300
        assert summary["retained_spans"] == sampled.retained_span_count
        assert summary["span_budget"] == budget

    def test_dropped_trees_release_child_index(self, sim):
        # min_slow_samples high keeps the slow threshold unarmed, so every
        # one of these healthy identical traces is a dropped normal.
        tracer = SampledTracer(
            sim, RetentionPolicy(normal_reservoir=0, min_slow_samples=1000)
        )
        for index in range(50):
            seal_trace(sim, tracer, f"n{index}")
        assert tracer._children == {}
        assert tracer._active == {}

    def test_error_trees_survive_normal_churn(self, sim):
        tracer = SampledTracer(
            sim, RetentionPolicy(span_budget=30, normal_reservoir=2)
        )
        err = seal_trace(sim, tracer, "bad", error="Boom")
        for index in range(50):
            seal_trace(sim, tracer, f"n{index}")
        retained = tracer.retained_tree(err.context.trace_id)
        assert retained is not None
        assert retained.keep == KEEP_ERROR
        # Structural queries still work on the retained tree.
        assert len(tracer.subtree(err)) == 3
