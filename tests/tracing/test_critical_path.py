"""Unit tests for span-tree analysis on hand-built trees."""

import pytest

from repro.analysis.spans import (
    aggregate_phase_attribution,
    control_plane_share,
    critical_path,
    critical_path_length,
    critical_path_phases,
    exclusive_time,
    phase_attribution,
    queueing_service_split,
)
from repro.sim import Simulator
from repro.tracing import NULL_SPAN, Tracer


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tracer(sim):
    return Tracer(sim)


def make_span(tracer, sim, name, phase, start, end, parent=None, tags=None):
    sim._now = start
    if parent is None:
        span = tracer.start_trace(name, phase=phase, tags=tags)
    else:
        span = parent.child(name, phase=phase, tags=tags)
    sim._now = end
    span.finish()
    return span


class TestExclusiveTime:
    def test_children_subtract_without_double_count(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 0.0, 10.0)
        make_span(tracer, sim, "a", "db", 1.0, 4.0, parent=root)
        make_span(tracer, sim, "b", "agent", 3.0, 6.0, parent=root)  # overlaps a
        assert exclusive_time(tracer, root) == pytest.approx(5.0)

    def test_unfinished_span_contributes_nothing(self, sim, tracer):
        root = tracer.start_trace("root", phase="task")
        assert exclusive_time(tracer, root) == 0.0

    def test_child_clamped_to_parent_window(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 2.0, 8.0)
        make_span(tracer, sim, "late", "db", 6.0, 12.0, parent=root)
        assert exclusive_time(tracer, root) == pytest.approx(4.0)


class TestPhaseAttribution:
    def test_sums_exactly_to_root_duration(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 0.0, 10.0)
        a = make_span(tracer, sim, "a", "agent", 1.0, 7.0, parent=root)
        make_span(tracer, sim, "a1", "queue", 1.0, 3.0, parent=a)
        make_span(tracer, sim, "b", "db", 8.0, 9.5, parent=root)
        attribution = phase_attribution(root)
        assert sum(attribution.values()) == pytest.approx(10.0)
        assert attribution["queue"] == pytest.approx(2.0)
        assert attribution["agent"] == pytest.approx(4.0)
        assert attribution["db"] == pytest.approx(1.5)
        assert attribution["task"] == pytest.approx(2.5)  # root's gaps

    def test_null_root_empty(self):
        assert phase_attribution(NULL_SPAN) == {}

    def test_aggregate_over_trees(self, sim, tracer):
        r1 = make_span(tracer, sim, "r1", "task", 0.0, 2.0)
        r2 = make_span(tracer, sim, "r2", "task", 0.0, 3.0)
        total = aggregate_phase_attribution([r1, r2])
        assert total["task"] == pytest.approx(5.0)

    def test_control_plane_share_excludes_copy(self):
        assert control_plane_share({"copy": 7.5, "db": 1.5, "queue": 1.0}) == pytest.approx(0.25)
        assert control_plane_share({}) == 0.0


class TestQueueingServiceSplit:
    def test_wait_tag_splits_buckets(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 0.0, 10.0)
        make_span(tracer, sim, "wait", "queue", 0.0, 4.0, parent=root, tags={"wait": True})
        make_span(tracer, sim, "work", "agent", 4.0, 9.0, parent=root)
        split = queueing_service_split(root)
        assert split["queueing"] == pytest.approx(4.0)
        assert split["service"] == pytest.approx(6.0)  # work + root gaps
        assert sum(split.values()) == pytest.approx(10.0)


class TestCriticalPath:
    def test_sequential_children_cover_root(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 0.0, 10.0)
        make_span(tracer, sim, "a", "db", 0.0, 4.0, parent=root)
        make_span(tracer, sim, "b", "agent", 4.0, 10.0, parent=root)
        segments = critical_path(root)
        assert [segment.span.name for segment in segments] == ["a", "b"]
        assert critical_path_length(segments) == pytest.approx(10.0)
        starts = [segment.start for segment in segments]
        assert starts == sorted(starts)

    def test_parallel_children_last_finisher_owns_path(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 0.0, 8.0)
        make_span(tracer, sim, "fast", "db", 0.0, 2.0, parent=root)
        make_span(tracer, sim, "slow", "copy", 0.0, 8.0, parent=root)
        segments = critical_path(root)
        assert [segment.span.name for segment in segments] == ["slow"]
        assert critical_path_phases(segments) == {"copy": pytest.approx(8.0)}

    def test_gaps_attributed_to_parent(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 0.0, 10.0)
        make_span(tracer, sim, "a", "db", 1.0, 3.0, parent=root)
        make_span(tracer, sim, "b", "agent", 5.0, 9.0, parent=root)
        segments = critical_path(root)
        assert critical_path_length(segments) == pytest.approx(10.0)
        phases = critical_path_phases(segments)
        assert phases["task"] == pytest.approx(4.0)  # 0-1, 3-5, 9-10
        assert phases["db"] == pytest.approx(2.0)
        assert phases["agent"] == pytest.approx(4.0)

    def test_recurses_into_nested_spans(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 0.0, 6.0)
        outer = make_span(tracer, sim, "outer", "agent", 0.0, 6.0, parent=root)
        make_span(tracer, sim, "inner_wait", "queue", 0.0, 2.0, parent=outer)
        make_span(tracer, sim, "inner_call", "agent", 2.0, 6.0, parent=outer)
        phases = critical_path_phases(critical_path(root))
        assert phases == {
            "queue": pytest.approx(2.0),
            "agent": pytest.approx(4.0),
        }

    def test_null_or_open_root_empty(self, tracer):
        assert critical_path(NULL_SPAN) == []
        open_root = tracer.start_trace("open", phase="task")
        assert critical_path(open_root) == []

    def test_zero_duration_root(self, sim, tracer):
        root = make_span(tracer, sim, "root", "task", 5.0, 5.0)
        assert critical_path(root) == []
        assert phase_attribution(root) == {}
