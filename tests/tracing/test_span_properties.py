"""Property-based tests on span-tree invariants (hypothesis).

Whatever the workload shape — storm size, concurrency, clone kind, seed,
even an active fault schedule — a finished run's span trees must satisfy:
children nest inside their parents, no span outlives its trace root,
phase attribution sums exactly to each root's duration, and the critical
path never exceeds (in fact equals) the root's latency.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.spans import critical_path, critical_path_length, phase_attribution
from repro.core.experiments import StormRig


def assert_tree_invariants(tracer):
    assert tracer.open_spans() == []
    by_id = {span.context.span_id: span for span in tracer.spans}
    for span in tracer.spans:
        assert span.end >= span.start
        parent_id = span.context.parent_id
        if parent_id is not None:
            parent = by_id[parent_id]
            assert span.context.trace_id == parent.context.trace_id
            assert span.start >= parent.start - 1e-9
            assert span.end <= parent.end + 1e-9


def assert_root_invariants(tracer, roots):
    for root in roots:
        attribution = phase_attribution(root)
        assert sum(attribution.values()) == pytest.approx(root.duration)
        segments = critical_path(root)
        length = critical_path_length(segments)
        assert length <= root.duration + 1e-9
        assert length == pytest.approx(root.duration)
        bounds = [(segment.start, segment.end) for segment in segments]
        assert bounds == sorted(bounds)


@given(
    seed=st.integers(min_value=0, max_value=2**16),
    total=st.integers(min_value=1, max_value=10),
    concurrency=st.integers(min_value=1, max_value=10),
    linked=st.booleans(),
)
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_storm_span_trees_satisfy_invariants(seed, total, concurrency, linked):
    rig = StormRig(seed=seed, hosts=4, datastores=2, traced=True)
    rig.closed_loop_storm(total=total, concurrency=concurrency, linked=linked)
    assert_tree_invariants(rig.tracer)
    roots = [task.span for task in rig.server.tasks.succeeded()]
    assert roots
    assert_root_invariants(rig.tracer, roots)
    for task in rig.server.tasks.succeeded():
        assert task.span.end <= rig.sim.now + 1e-9


@given(seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_span_invariants_hold_under_fault_schedule(seed):
    """R-X3 conditions: the standard fault schedule, retries enabled."""
    import dataclasses

    from repro.controlplane.costs import ControlPlaneConfig, DEFAULT_COSTS
    from repro.controlplane.resilience import RetryPolicy
    from repro.faults import FaultInjector, FaultTargets, standard_fault_schedule
    from repro.operations.provisioning import CloneVM
    from repro.sim.events import AllOf

    duration = 120.0
    rig = StormRig(
        seed=seed,
        hosts=4,
        datastores=2,
        traced=True,
        costs=dataclasses.replace(DEFAULT_COSTS, host_call_timeout_s=20.0),
        config=ControlPlaneConfig(
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=1.0),
        ),
    )
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(rig.server),
        standard_fault_schedule(duration),
        rng=rig.streams.stream("fault-injector"),
    ).start()

    def one(index):
        process = rig.server.submit(
            CloneVM(
                rig.template,
                f"storm-{index}",
                rig.hosts[index % len(rig.hosts)],
                rig.datastores[index % len(rig.datastores)],
                linked=True,
            )
        )
        try:
            yield process
        except Exception:
            pass

    workers = [rig.sim.spawn(one(index)) for index in range(8)]
    rig.sim.run(until=AllOf(rig.sim, workers))
    rig.sim.run(until=rig.sim.spawn(injector.drain()))
    assert_tree_invariants(rig.tracer)
    finished_roots = [
        task.span
        for task in rig.server.tasks.completed()
        if not task.span.is_null and task.span.finished
    ]
    assert finished_roots
    assert_root_invariants(rig.tracer, finished_roots)
