"""Unit tests for span primitives, the tracer, and export round-trips."""

import json

import pytest

from repro.sim import Simulator
from repro.tracing import (
    NULL_SPAN,
    NULL_TRACER,
    NullTracer,
    PHASES,
    Span,
    Tracer,
    chrome_trace_events,
    plane_seconds_from_span,
    read_spans_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tracer(sim):
    return Tracer(sim)


class TestSpan:
    def test_lifecycle_on_simulated_time(self, sim, tracer):
        span = tracer.start_trace("task.clone", phase="task")
        assert not span.finished
        sim._now = 2.5  # the kernel owns time; tests may poke it directly
        span.finish()
        assert span.finished
        assert span.duration == 2.5
        assert span.ok

    def test_unknown_phase_rejected(self, tracer):
        with pytest.raises(ValueError, match="unknown phase"):
            tracer.start_trace("x", phase="nonsense")

    def test_finish_is_idempotent_first_wins(self, sim, tracer):
        span = tracer.start_trace("x", phase="task")
        sim._now = 1.0
        span.finish()
        sim._now = 9.0
        span.finish(error="TooLate")
        assert span.end == 1.0
        assert span.ok  # the late error did not stick

    def test_error_finish_keeps_duration(self, sim, tracer):
        span = tracer.start_trace("x", phase="agent")
        sim._now = 3.0
        span.finish(error="HostTimeout")
        assert span.duration == 3.0
        assert not span.ok
        assert span.tags["error"] == "HostTimeout"

    def test_duration_before_finish_raises(self, tracer):
        span = tracer.start_trace("x", phase="task")
        with pytest.raises(RuntimeError, match="not finished"):
            span.duration

    def test_child_links_context(self, tracer):
        root = tracer.start_trace("root", phase="task")
        child = root.child("kid", phase="db")
        assert child.context.trace_id == root.context.trace_id
        assert child.context.parent_id == root.context.span_id
        assert tracer.children(root) == [child]

    def test_annotate(self, tracer):
        span = tracer.start_trace("x", phase="task")
        span.annotate("attempts", 3)
        assert span.tags["attempts"] == 3

    def test_phase_taxonomy_is_closed(self):
        assert len(PHASES) == len(set(PHASES))
        assert "copy" in PHASES and "queue" in PHASES


class TestNullSpan:
    def test_shared_inert_singleton(self):
        assert NULL_SPAN.is_null
        assert NULL_SPAN.child("x") is NULL_SPAN
        assert NULL_SPAN.finish(error="boom") is NULL_SPAN
        NULL_SPAN.annotate("k", 1)
        assert NULL_SPAN.tags == {}

    def test_null_tracer_allocates_nothing(self, sim):
        assert NULL_TRACER.start_trace("x") is NULL_SPAN
        assert NULL_TRACER.start_span("x", parent=NULL_SPAN) is NULL_SPAN
        assert isinstance(NULL_TRACER, NullTracer)
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.children(NULL_SPAN) == []


class TestTracer:
    def test_subtree_preorder(self, sim, tracer):
        root = tracer.start_trace("root", phase="task")
        a = root.child("a", phase="db")
        b = root.child("b", phase="agent")
        a1 = a.child("a1", phase="queue")
        order = [span.name for span in tracer.subtree(root)]
        assert order[0] == "root"
        assert set(order) == {"root", "a", "b", "a1"}
        assert order.index("a") < order.index("a1")
        assert a1 in tracer.subtree(a)
        assert b not in tracer.subtree(a)

    def test_roots_and_open_spans(self, sim, tracer):
        root = tracer.start_trace("r", phase="task")
        child = root.child("c", phase="db")
        assert tracer.roots() == [root]
        assert set(tracer.open_spans()) == {root, child}
        child.finish()
        root.finish()
        assert tracer.open_spans() == []

    def test_clear(self, tracer):
        tracer.start_trace("r", phase="task")
        tracer.clear()
        assert tracer.spans == []
        assert tracer.roots() == []

    def test_plane_seconds_counts_only_ok_plane_tagged(self, sim, tracer):
        root = tracer.start_trace("r", phase="task")
        ctl = root.child("validate", phase="cpu", tags={"plane": "control"})
        sim._now = 1.0
        ctl.finish()
        data = root.child("copy", phase="copy", tags={"plane": "data"})
        sim._now = 4.0
        data.finish()
        failed = root.child("retry", phase="cpu", tags={"plane": "control"})
        sim._now = 6.0
        failed.finish(error="Boom")
        untagged = root.child("db.write", phase="db")
        sim._now = 7.0
        untagged.finish()
        root.finish()
        assert plane_seconds_from_span(root, "control") == 1.0
        assert plane_seconds_from_span(root, "data") == 3.0


class TestExport:
    def _make_tree(self, sim, tracer):
        root = tracer.start_trace("task.clone", phase="task", tags={"task_id": 7})
        child = root.child("db.write", phase="db", tags={"rows": 2})
        sim._now = 0.25
        child.finish()
        sim._now = 1.5
        root.finish()
        return root, child

    def test_chrome_events_shape(self, sim, tracer):
        root, child = self._make_tree(sim, tracer)
        events = chrome_trace_events(tracer.spans)
        assert [event["ph"] for event in events] == ["X", "X"]
        by_name = {event["name"]: event for event in events}
        assert by_name["task.clone"]["dur"] == pytest.approx(1.5e6)
        assert by_name["db.write"]["args"]["parent_id"] == root.context.span_id
        assert by_name["db.write"]["args"]["rows"] == 2
        # Parent sorts before child at the same timestamp (longer first).
        assert events[0]["name"] == "task.clone"

    def test_chrome_trace_file(self, sim, tracer, tmp_path):
        self._make_tree(sim, tracer)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer.spans, path)
        assert count == 2
        payload = json.loads(path.read_text())
        assert payload["displayTimeUnit"] == "ms"
        assert len(payload["traceEvents"]) == 2

    def test_jsonl_round_trip(self, sim, tracer, tmp_path):
        root, child = self._make_tree(sim, tracer)
        path = tmp_path / "spans.jsonl"
        assert write_spans_jsonl(tracer.spans, path) == 2
        loaded = read_spans_jsonl(path)
        assert [row["name"] for row in loaded] == ["task.clone", "db.write"]
        assert loaded[0]["span_id"] == root.context.span_id
        assert loaded[1]["parent_id"] == root.context.span_id
        assert loaded[0]["end"] == 1.5

    def test_jsonl_rejects_malformed(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps({"name": "x"}) + "\n")
        with pytest.raises(ValueError):
            read_spans_jsonl(path)
