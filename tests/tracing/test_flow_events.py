"""Chrome trace flow events linking a task's retry attempts.

Sibling ``attempt-N`` spans under the same parent are one logical retry
chain; the exporter emits paired flow events (ph ``s`` at the earlier
attempt's end, ph ``f`` at the later attempt's start) so Perfetto draws
an arrow between them. Chains are per (trace, parent): two tasks' retry
chains never cross-link.
"""

import json

import pytest

from repro.sim import Simulator
from repro.tracing import Tracer, chrome_trace_events, retry_flow_events


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def tracer(sim):
    return Tracer(sim)


def run_attempts(sim, root, count, gap=2.0, width=1.0):
    spans = []
    for number in range(1, count + 1):
        attempt = root.child(f"attempt-{number}", phase="task")
        sim._now += width
        attempt.finish(error="Boom" if number < count else None)
        spans.append(attempt)
        sim._now += gap
    return spans


def test_consecutive_attempts_linked(sim, tracer):
    root = tracer.start_trace("task.clone", phase="task")
    attempts = run_attempts(sim, root, 3)
    root.finish()

    events = retry_flow_events(tracer.spans)
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 2  # 3 attempts -> 2 links
    # Each link leaves the earlier attempt's end and lands on the later
    # attempt's start, sharing one flow id.
    for start, finish, prev, nxt in zip(
        starts, finishes, attempts, attempts[1:]
    ):
        assert start["id"] == finish["id"]
        assert start["ts"] == pytest.approx(prev.end * 1e6)
        assert finish["ts"] == pytest.approx(nxt.start * 1e6)
        assert finish["bp"] == "e"
        assert start["cat"] == finish["cat"] == "retry"


def test_single_attempt_emits_nothing(sim, tracer):
    root = tracer.start_trace("task.clone", phase="task")
    run_attempts(sim, root, 1)
    root.finish()
    assert retry_flow_events(tracer.spans) == []


def test_chains_do_not_cross_traces(sim, tracer):
    root_a = tracer.start_trace("a", phase="task")
    root_b = tracer.start_trace("b", phase="task")
    run_attempts(sim, root_a, 2)
    run_attempts(sim, root_b, 2)
    root_a.finish()
    root_b.finish()

    events = retry_flow_events(tracer.spans)
    assert len([e for e in events if e["ph"] == "s"]) == 2
    # Distinct chains get distinct flow ids.
    ids = {e["id"] for e in events}
    assert len(ids) == 2


def test_non_attempt_spans_ignored(sim, tracer):
    root = tracer.start_trace("task.clone", phase="task")
    child = root.child("placement", phase="placement")
    sim._now = 1.0
    child.finish()
    root.finish()
    assert retry_flow_events(tracer.spans) == []


def test_unfinished_attempts_skipped(sim, tracer):
    root = tracer.start_trace("task.clone", phase="task")
    first = root.child("attempt-1", phase="task")
    sim._now = 1.0
    first.finish(error="Boom")
    root.child("attempt-2", phase="task")  # still open
    assert retry_flow_events(tracer.spans) == []


def test_chrome_export_carries_flow_events(sim, tracer, tmp_path):
    root = tracer.start_trace("task.clone", phase="task")
    run_attempts(sim, root, 2)
    root.finish()

    events = chrome_trace_events(tracer.spans)
    flows = [e for e in events if e.get("cat") == "retry"]
    assert len(flows) == 2
    # And the whole list still round-trips as JSON (the file format).
    path = tmp_path / "trace.json"
    path.write_text(json.dumps(events))
    assert json.loads(path.read_text()) == events
