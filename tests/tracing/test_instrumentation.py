"""Integration tests: real workloads produce coherent span trees."""

import pytest

from repro.analysis.spans import (
    critical_path,
    critical_path_length,
    phase_attribution,
    queueing_service_split,
)
from repro.controlplane.resilience import RetryPolicy
from repro.controlplane.task_manager import TaskManager
from repro.core.experiments import StormRig
from repro.faults import TransientError
from repro.sim import RandomStreams, Simulator
from repro.tracing import Tracer
from repro.traces.records import TraceRecord


def traced_storm(linked=True, total=12, concurrency=6, seed=0):
    rig = StormRig(seed=seed, traced=True)
    rig.closed_loop_storm(total=total, concurrency=concurrency, linked=linked)
    return rig


class TestTracedStorm:
    def test_every_span_finishes(self):
        rig = traced_storm()
        assert rig.tracer.spans
        assert rig.tracer.open_spans() == []

    def test_attribution_sums_to_root_duration(self):
        rig = traced_storm()
        for task in rig.server.tasks.succeeded():
            attribution = phase_attribution(task.span)
            assert sum(attribution.values()) == pytest.approx(task.span.duration)

    def test_critical_path_equals_root_duration(self):
        rig = traced_storm(linked=False, total=8, concurrency=4)
        for task in rig.server.tasks.succeeded():
            segments = critical_path(task.span)
            assert critical_path_length(segments) == pytest.approx(task.span.duration)

    def test_root_span_covers_task_service(self):
        rig = traced_storm()
        for task in rig.server.tasks.succeeded():
            # The root span opens at submit and closes after the completion
            # write, so it brackets the task's own latency accounting.
            assert task.span.start == pytest.approx(task.submitted_at)
            assert task.span.duration >= task.latency - 1e-9

    def test_trace_record_consistency_assertion_passes(self):
        rig = traced_storm(linked=False, total=8, concurrency=4)
        for task in rig.server.tasks.succeeded():
            record = TraceRecord.from_task(task)
            assert record.control_s > 0.0
            assert record.data_s > 0.0  # full clones move bytes

    def test_contention_produces_wait_spans(self):
        rig = traced_storm(total=24, concurrency=24)
        waits = [
            span
            for span in rig.tracer.spans
            if span.tags.get("wait") and span.duration > 0.0
        ]
        assert waits
        assert all(span.phase in ("queue", "copy", "retry", "admission") for span in waits)
        split_total = {"queueing": 0.0, "service": 0.0}
        for task in rig.server.tasks.succeeded():
            for bucket, seconds in queueing_service_split(task.span).items():
                split_total[bucket] += seconds
        assert split_total["queueing"] > 0.0

    def test_untraced_rig_records_nothing(self):
        rig = StormRig(seed=0)
        rig.closed_loop_storm(total=4, concurrency=2, linked=True)
        assert rig.tracer.spans == []
        assert all(task.span.is_null for task in rig.server.tasks.succeeded())

    def test_deterministic_at_fixed_seed(self):
        first = traced_storm(seed=3)
        second = traced_storm(seed=3)
        assert len(first.tracer.spans) == len(second.tracer.spans)
        assert [s.name for s in first.tracer.spans] == [s.name for s in second.tracer.spans]
        assert [s.end for s in first.tracer.spans] == [s.end for s in second.tracer.spans]


class TestRetrySpans:
    def _manager(self, sim):
        from repro.controlplane.costs import DEFAULT_COSTS
        from repro.controlplane.database import DatabaseModel

        streams = RandomStreams(seed=7)
        database = DatabaseModel(
            sim, DEFAULT_COSTS, connections=4, rng=streams.stream("db")
        )
        tracer = Tracer(sim)
        manager = TaskManager(
            sim,
            database,
            max_inflight=4,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=1.0, jitter=0.0),
            tracer=tracer,
        )
        return manager, tracer

    def test_transient_failure_yields_attempt_and_backoff_spans(self):
        sim = Simulator()
        manager, tracer = self._manager(sim)
        failures = [TransientError("agent hiccup")]

        def body(task):
            yield sim.timeout(0.5)
            if failures:
                raise failures.pop()

        def proc():
            yield from manager.run_task("clone", body)

        sim.run(until=sim.spawn(proc()))
        (task,) = manager.tasks
        assert task.attempts == 2
        names = [span.name for span in tracer.subtree(task.span)]
        assert "attempt-1" in names and "attempt-2" in names
        assert "task.backoff" in names
        by_name = {span.name: span for span in tracer.subtree(task.span)}
        assert by_name["attempt-1"].tags["error"] == "TransientError"
        assert by_name["attempt-2"].ok
        assert by_name["task.backoff"].phase == "retry"
        assert by_name["task.backoff"].duration == pytest.approx(1.0)
        assert task.span.tags["attempts"] == 2
        assert tracer.open_spans() == []

    def test_terminal_failure_marks_root_span(self):
        sim = Simulator()
        manager, tracer = self._manager(sim)

        def body(task):
            yield sim.timeout(0.1)
            raise RuntimeError("not retryable")

        def proc():
            try:
                yield from manager.run_task("clone", body)
            except RuntimeError:
                pass

        sim.run(until=sim.spawn(proc()))
        (task,) = manager.tasks
        assert not task.span.ok
        assert task.span.tags["error"] == "RuntimeError"
        assert task.span.finished
        assert tracer.open_spans() == []


class TestDirectorSpans:
    def test_deploy_request_parents_task_spans(self):
        from repro.cloud.catalog import Catalog, CatalogItem
        from repro.cloud.director import CloudDirector, DeployRequest
        from repro.cloud.tenancy import Organization
        from repro.datacenter.templates import MEDIUM_LINUX

        rig = StormRig(seed=0, traced=True)
        catalog = Catalog("demo")
        item = catalog.add(CatalogItem(name="web", template_name=MEDIUM_LINUX.name))
        org = Organization("org", quota_vms=100, quota_storage_gb=1e6)
        director = CloudDirector(rig.server, rig.cluster, rig.library, catalog)

        def proc():
            yield from director.deploy(
                DeployRequest(org=org, item=item, vm_count=2, vapp_name="app")
            )

        rig.sim.run(until=rig.sim.spawn(proc()))
        roots = [span for span in rig.tracer.roots() if span.name.startswith("deploy.")]
        assert len(roots) == 1
        request_span = roots[0]
        assert request_span.finished and request_span.ok
        vm_spans = rig.tracer.children(request_span)
        assert sorted(span.name for span in vm_spans) == ["vm-0", "vm-1"]
        for vm_span in vm_spans:
            task_spans = [
                child
                for child in rig.tracer.children(vm_span)
                if child.name.startswith("task.")
            ]
            assert task_spans
            # The whole tree shares the request's trace id.
            for task_span in task_spans:
                assert task_span.context.trace_id == request_span.context.trace_id
        assert rig.tracer.open_spans() == []
