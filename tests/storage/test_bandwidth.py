"""Unit + property tests for the fair-share bandwidth link."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.storage import FairShareLink


def run_transfers(capacity, submissions):
    """submissions: list of (start_time, size). Returns finish times."""
    sim = Simulator()
    link = FairShareLink(sim, capacity_bps=capacity)
    finishes = {}

    def submit(index, start, size):
        yield sim.timeout(start)
        transfer = yield link.transfer(size)
        finishes[index] = (sim.now, transfer)

    for index, (start, size) in enumerate(submissions):
        sim.spawn(submit(index, start, size))
    sim.run()
    return sim, link, finishes


def test_single_transfer_takes_size_over_capacity():
    sim, link, finishes = run_transfers(100.0, [(0.0, 500.0)])
    time, transfer = finishes[0]
    assert time == pytest.approx(5.0)
    assert transfer.duration == pytest.approx(5.0)
    assert link.bytes_delivered == pytest.approx(500.0)


def test_two_equal_transfers_share_and_finish_together():
    sim, link, finishes = run_transfers(100.0, [(0.0, 500.0), (0.0, 500.0)])
    assert finishes[0][0] == pytest.approx(10.0)
    assert finishes[1][0] == pytest.approx(10.0)


def test_late_joiner_slows_first_transfer():
    # T0: 1000 bytes at 100 B/s. At t=5, 500 done. T1 joins with 250 bytes.
    # Shared rate 50 B/s each: T1 finishes at t=10; T0 has 250 left at t=10,
    # then full rate: finishes at t=12.5.
    sim, link, finishes = run_transfers(100.0, [(0.0, 1000.0), (5.0, 250.0)])
    assert finishes[1][0] == pytest.approx(10.0)
    assert finishes[0][0] == pytest.approx(12.5)


def test_zero_byte_transfer_completes_immediately():
    sim, link, finishes = run_transfers(100.0, [(0.0, 0.0)])
    assert finishes[0][0] == 0.0
    assert link.transfer_count == 1


def test_negative_size_rejected():
    sim = Simulator()
    link = FairShareLink(sim, capacity_bps=100.0)
    with pytest.raises(ValueError):
        link.transfer(-1.0)


def test_capacity_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        FairShareLink(sim, capacity_bps=0.0)


def test_per_transfer_rate_reflects_sharing():
    sim = Simulator()
    link = FairShareLink(sim, capacity_bps=100.0)

    def proc():
        link.transfer(1000.0)
        link.transfer(1000.0)
        assert link.per_transfer_rate == pytest.approx(50.0)
        assert link.active_count == 2
        yield sim.timeout(0.0)

    sim.spawn(proc())
    sim.run(until=1.0)


def test_utilization_busy_fraction():
    # 100-byte transfer at 100 B/s starting at t=0, then idle to t=10.
    sim, link, finishes = run_transfers(100.0, [(0.0, 100.0)])
    sim.run(until=10.0)
    assert link.utilization() == pytest.approx(0.1)


@given(
    sizes=st.lists(
        st.floats(min_value=1.0, max_value=1e6), min_size=1, max_size=12
    ),
    capacity=st.floats(min_value=1.0, max_value=1e4),
)
@settings(max_examples=60, deadline=None)
def test_total_time_is_work_conserving(sizes, capacity):
    """All transfers started together finish exactly at sum(sizes)/capacity."""
    sim, link, finishes = run_transfers(capacity, [(0.0, size) for size in sizes])
    last_finish = max(time for time, _ in finishes.values())
    assert last_finish == pytest.approx(sum(sizes) / capacity, rel=1e-6)
    assert link.bytes_delivered == pytest.approx(sum(sizes), rel=1e-6)


@given(
    submissions=st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.floats(min_value=1.0, max_value=1e5),
        ),
        min_size=1,
        max_size=10,
    ),
    capacity=st.floats(min_value=10.0, max_value=1e4),
)
@settings(max_examples=60, deadline=None)
def test_no_transfer_beats_its_solo_time_and_all_finish(submissions, capacity):
    sim, link, finishes = run_transfers(capacity, submissions)
    assert len(finishes) == len(submissions)
    for index, (start, size) in enumerate(submissions):
        finish, transfer = finishes[index]
        solo = size / capacity
        assert finish >= start + solo - 1e-6
        assert transfer.size_bytes == size
        assert transfer.remaining == 0.0
