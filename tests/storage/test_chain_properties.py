"""Property tests: conservation laws of the backing-chain algebra."""

import pytest

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import Datastore, DiskBacking, VirtualDisk
from repro.storage.linked_clone import (
    create_linked_backing,
    merge_leaf_into_parent,
)


def fresh_datastore():
    return Datastore(entity_id="ds-1", name="lun", capacity_gb=1e9)


@given(
    sizes=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=10)
)
@settings(max_examples=60, deadline=None)
def test_logical_size_is_sum_of_chain(sizes):
    datastore = fresh_datastore()
    backing = DiskBacking(datastore=datastore, size_gb=sizes[0], read_only=True)
    for size in sizes[1:]:
        backing = create_linked_backing(backing, datastore, initial_gb=size)
        backing.read_only = True
    assert backing.logical_size_gb == pytest.approx(sum(sizes))
    assert backing.chain_depth == len(sizes)


@given(
    base_gb=st.floats(min_value=1.0, max_value=100.0),
    writes=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=8),
)
@settings(max_examples=60, deadline=None)
def test_merge_conserves_logical_size_and_datastore_usage(base_gb, writes):
    """Merging deltas never changes the logical disk contents or the net
    allocated bytes (bytes move between files, they don't appear/vanish)."""
    datastore = fresh_datastore()
    base = DiskBacking(datastore=datastore, size_gb=base_gb)
    datastore.allocate(base_gb)
    disk = VirtualDisk(label="d", backing=base, provisioned_gb=base_gb)
    # Build a private snapshot chain with synthetic guest writes.
    for written in writes:
        leaf = disk.backing
        leaf.read_only = True
        delta = create_linked_backing(leaf, datastore, initial_gb=0.0)
        datastore.allocate(written)
        delta.size_gb += written
        disk.backing = delta
    logical_before = disk.backing.logical_size_gb
    used_before = datastore.used_gb
    # Merge all the way back down.
    while disk.backing.parent is not None:
        merge_leaf_into_parent(disk)
    assert disk.chain_depth == 1
    assert disk.backing.logical_size_gb == pytest.approx(logical_before)
    assert datastore.used_gb == pytest.approx(used_before)


@given(
    fanout=st.integers(min_value=1, max_value=20),
    destroy_order=st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_anchor_children_return_to_zero_after_all_clones_die(fanout, destroy_order):
    datastore = fresh_datastore()
    anchor = DiskBacking(datastore=datastore, size_gb=40.0, read_only=True)
    deltas = [create_linked_backing(anchor, datastore) for _ in range(fanout)]
    assert anchor.children == fanout
    destroy_order.shuffle(deltas)
    for delta in deltas:
        # DestroyVM's reclamation rule for leaves.
        if delta.children == 0:
            delta.datastore.reclaim(delta.size_gb)
            delta.parent.children -= 1
    assert anchor.children == 0
    # Only the anchor's own bytes remain allocated (it was never charged
    # here, so usage is back to zero).
    assert datastore.used_gb == pytest.approx(0.0, abs=1e-9)
