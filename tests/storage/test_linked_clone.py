"""Unit + property tests for linked-clone chain mechanics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datacenter import Datastore, DiskBacking, VirtualDisk, VirtualMachine
from repro.storage import (
    LinkedCloneError,
    consolidate_chain,
    create_linked_backing,
    ensure_clone_anchor,
)
from repro.storage.linked_clone import INITIAL_DELTA_GB, MAX_CHAIN_DEPTH


def make_datastore(capacity=100000.0):
    return Datastore(entity_id="ds-1", name="lun", capacity_gb=capacity)


def make_template(datastore, size_gb=40.0):
    vm = VirtualMachine(entity_id="vm-t", name="template", is_template=True)
    backing = DiskBacking(datastore=datastore, size_gb=size_gb, read_only=True)
    vm.attach_disk(VirtualDisk(label="disk-0", backing=backing, provisioned_gb=size_gb))
    return vm


def test_template_anchors_directly_without_snapshot():
    datastore = make_datastore()
    template = make_template(datastore)
    anchors = ensure_clone_anchor(template)
    assert anchors == [template.disks[0].backing]
    assert template.snapshots == []


def test_writable_vm_gets_snapshotted_for_anchor():
    datastore = make_datastore()
    vm = VirtualMachine(entity_id="vm-1", name="vm")
    backing = DiskBacking(datastore=datastore, size_gb=40.0)
    vm.attach_disk(VirtualDisk(label="disk-0", backing=backing, provisioned_gb=40.0))
    anchors = ensure_clone_anchor(vm)
    assert len(vm.snapshots) == 1
    assert anchors[0] is backing
    assert backing.read_only


def test_second_clone_reuses_existing_anchor():
    datastore = make_datastore()
    vm = VirtualMachine(entity_id="vm-1", name="vm")
    backing = DiskBacking(datastore=datastore, size_gb=40.0)
    vm.attach_disk(VirtualDisk(label="disk-0", backing=backing, provisioned_gb=40.0))
    first = ensure_clone_anchor(vm)
    second = ensure_clone_anchor(vm)
    assert first == second
    assert len(vm.snapshots) == 1


def test_diskless_source_rejected():
    vm = VirtualMachine(entity_id="vm-1", name="empty")
    with pytest.raises(LinkedCloneError):
        ensure_clone_anchor(vm)


def test_create_linked_backing_allocates_delta_only():
    datastore = make_datastore()
    template = make_template(datastore)
    anchor = template.disks[0].backing
    before = datastore.used_gb
    delta = create_linked_backing(anchor, datastore)
    assert delta.parent is anchor
    assert datastore.used_gb - before == pytest.approx(INITIAL_DELTA_GB)
    assert anchor.children == 1


def test_linked_backing_requires_read_only_anchor():
    datastore = make_datastore()
    writable = DiskBacking(datastore=datastore, size_gb=40.0)
    with pytest.raises(LinkedCloneError):
        create_linked_backing(writable, datastore)


def test_chain_depth_limit_enforced():
    datastore = make_datastore()
    backing = DiskBacking(datastore=datastore, size_gb=1.0, read_only=True)
    for _ in range(MAX_CHAIN_DEPTH - 1):
        backing = create_linked_backing(backing, datastore)
        backing.read_only = True
    with pytest.raises(LinkedCloneError):
        create_linked_backing(backing, datastore)


def test_delta_may_live_on_other_datastore():
    source_ds = make_datastore()
    other_ds = Datastore(entity_id="ds-2", name="lun2", capacity_gb=1000.0)
    template = make_template(source_ds)
    delta = create_linked_backing(template.disks[0].backing, other_ds)
    assert delta.datastore is other_ds
    assert other_ds.used_gb == pytest.approx(INITIAL_DELTA_GB)


def test_consolidate_collapses_to_depth_one():
    datastore = make_datastore()
    template = make_template(datastore, size_gb=40.0)
    delta = create_linked_backing(template.disks[0].backing, datastore, initial_gb=2.0)
    disk = VirtualDisk(label="disk-0", backing=delta, provisioned_gb=40.0)
    moved = consolidate_chain(disk)
    assert moved == pytest.approx(42.0)
    assert disk.chain_depth == 1
    assert disk.backing.size_gb == pytest.approx(42.0)


def test_consolidate_flat_chain_is_noop():
    datastore = make_datastore()
    backing = DiskBacking(datastore=datastore, size_gb=40.0)
    disk = VirtualDisk(label="disk-0", backing=backing, provisioned_gb=40.0)
    assert consolidate_chain(disk) == 0.0
    assert disk.backing is backing


def test_consolidate_decrements_parent_children():
    datastore = make_datastore()
    template = make_template(datastore)
    anchor = template.disks[0].backing
    delta = create_linked_backing(anchor, datastore)
    disk = VirtualDisk(label="disk-0", backing=delta, provisioned_gb=40.0)
    consolidate_chain(disk)
    assert anchor.children == 0


@given(fanout=st.integers(min_value=1, max_value=50))
@settings(max_examples=30, deadline=None)
def test_fanout_children_count_matches_clones(fanout):
    datastore = make_datastore(capacity=1e6)
    template = make_template(datastore)
    anchor = template.disks[0].backing
    for _ in range(fanout):
        create_linked_backing(anchor, datastore)
    assert anchor.children == fanout


@given(depth=st.integers(min_value=1, max_value=MAX_CHAIN_DEPTH - 1))
@settings(max_examples=20, deadline=None)
def test_chain_depth_monotone_in_links(depth):
    datastore = make_datastore(capacity=1e6)
    backing = DiskBacking(datastore=datastore, size_gb=1.0, read_only=True)
    depths = [backing.chain_depth]
    for _ in range(depth):
        backing = create_linked_backing(backing, datastore)
        backing.read_only = True
        depths.append(backing.chain_depth)
    assert depths == sorted(depths)
    assert depths[-1] == depth + 1
