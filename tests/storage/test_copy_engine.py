"""Unit tests for the copy engine and scheduler."""

import pytest

from repro.datacenter import Datastore
from repro.sim import Simulator
from repro.storage import CopyEngine, CopyFailed, CopyScheduler
from repro.storage.copy_engine import GB


@pytest.fixture
def sim():
    return Simulator()


def make_ds(n, capacity=10000.0):
    return Datastore(entity_id=f"ds-{n}", name=f"lun{n}", capacity_gb=capacity)


def run_copy(sim, engine, source, destination, size_gb):
    result = {}

    def proc():
        result["elapsed"] = yield from engine.copy(source, destination, size_gb)

    process = sim.spawn(proc())
    sim.run(until=process)
    return result["elapsed"]


def test_copy_duration_scales_with_size(sim):
    engine = CopyEngine(sim, default_capacity_bps=100 * 1024**3)  # 100 GB/s
    src, dst = make_ds(1), make_ds(2)
    elapsed = run_copy(sim, engine, src, dst, 200.0)
    assert elapsed == pytest.approx(200.0 * GB / (100 * 1024**3))


def test_copy_allocates_destination_space(sim):
    engine = CopyEngine(sim, default_capacity_bps=GB)
    src, dst = make_ds(1), make_ds(2)
    run_copy(sim, engine, src, dst, 40.0)
    assert dst.used_gb == pytest.approx(40.0)
    assert src.used_gb == 0.0


def test_copy_counts_bytes_both_directions(sim):
    engine = CopyEngine(sim, default_capacity_bps=GB)
    src, dst = make_ds(1), make_ds(2)
    run_copy(sim, engine, src, dst, 10.0)
    assert engine.total_bytes_written == pytest.approx(10 * GB)
    assert engine.total_bytes_read == pytest.approx(10 * GB)


def test_injected_failure_raises_and_leaks_nothing(sim):
    engine = CopyEngine(sim, default_capacity_bps=GB)
    src, dst = make_ds(1), make_ds(2)
    engine.inject_failure()

    def proc():
        with pytest.raises(CopyFailed):
            yield from engine.copy(src, dst, 40.0)
        return "done"

    process = sim.spawn(proc())
    assert sim.run(until=process) == "done"
    assert dst.used_gb == 0.0


def test_concurrent_copies_share_destination_link(sim):
    engine = CopyEngine(sim, default_capacity_bps=GB)  # 1 GB/s
    src, dst = make_ds(1), make_ds(2)
    finishes = []

    def proc():
        yield from engine.copy(src, dst, 10.0)
        finishes.append(sim.now)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    # Two 10 GB copies over a shared 1 GB/s link: both end at ~20.48s
    assert finishes[0] == pytest.approx(finishes[1])
    assert finishes[0] == pytest.approx(2 * 10.0 * GB / GB)


def test_copies_to_different_datastores_do_not_interfere(sim):
    engine = CopyEngine(sim, default_capacity_bps=GB)
    src = make_ds(1)
    finishes = {}

    def proc(tag, destination):
        yield from engine.copy(src, destination, 10.0)
        finishes[tag] = sim.now

    sim.spawn(proc("a", make_ds(2)))
    sim.spawn(proc("b", make_ds(3)))
    sim.run()
    assert finishes["a"] == pytest.approx(10.0 * GB / GB)
    assert finishes["b"] == pytest.approx(10.0 * GB / GB)


def test_set_capacity_overrides_default(sim):
    engine = CopyEngine(sim, default_capacity_bps=GB)
    src, dst = make_ds(1), make_ds(2)
    engine.set_capacity(dst, 2 * GB)
    elapsed = run_copy(sim, engine, src, dst, 10.0)
    assert elapsed == pytest.approx(5.0)


class TestCopyScheduler:
    def test_slots_limit_concurrency(self, sim):
        engine = CopyEngine(sim, default_capacity_bps=GB)
        scheduler = CopyScheduler(sim, engine, slots_per_datastore=1)
        src, dst = make_ds(1), make_ds(2)
        finishes = []

        def proc():
            yield from scheduler.scheduled_copy(src, dst, 10.0)
            finishes.append(sim.now)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        # Serialized: 10s then 20s (at 1 GB/s each copy is 10s alone).
        assert finishes == [pytest.approx(10.0), pytest.approx(20.0)]

    def test_queue_wait_recorded(self, sim):
        engine = CopyEngine(sim, default_capacity_bps=GB)
        scheduler = CopyScheduler(sim, engine, slots_per_datastore=1)
        src, dst = make_ds(1), make_ds(2)

        def proc():
            yield from scheduler.scheduled_copy(src, dst, 10.0)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        waits = scheduler.metrics.latency("queue_wait")
        assert waits.count == 2
        assert waits.percentile(1.0) == pytest.approx(10.0)

    def test_slot_released_on_copy_failure(self, sim):
        engine = CopyEngine(sim, default_capacity_bps=GB)
        scheduler = CopyScheduler(sim, engine, slots_per_datastore=1)
        src, dst = make_ds(1), make_ds(2)
        engine.inject_failure()
        outcomes = []

        def failing():
            try:
                yield from scheduler.scheduled_copy(src, dst, 10.0)
            except CopyFailed:
                outcomes.append("failed")

        def following():
            yield from scheduler.scheduled_copy(src, dst, 10.0)
            outcomes.append("ok")

        sim.spawn(failing())
        sim.spawn(following())
        sim.run()
        assert outcomes == ["failed", "ok"]

    def test_invalid_slot_count(self, sim):
        engine = CopyEngine(sim)
        with pytest.raises(ValueError):
            CopyScheduler(sim, engine, slots_per_datastore=0)
