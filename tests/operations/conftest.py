"""Shared fixtures: a small managed infrastructure for operation tests."""

import pytest

from repro.controlplane import ControlPlaneConfig, ManagementServer
from repro.datacenter import (
    Cluster,
    Datacenter,
    Datastore,
    Host,
    Network,
    TemplateLibrary,
)
from repro.datacenter.templates import MEDIUM_LINUX
from repro.sim import RandomStreams, Simulator


class SmallCloud:
    """A 4-host, 2-datastore managed setup used across operation tests."""

    def __init__(self, seed=42, config=None, hosts=4, datastores=2):
        self.sim = Simulator()
        self.streams = RandomStreams(seed=seed)
        self.server = ManagementServer(
            self.sim, self.streams, config=config or ControlPlaneConfig()
        )
        inventory = self.server.inventory
        self.datacenter = inventory.create(Datacenter, name="dc01")
        self.cluster = inventory.create(Cluster, name="gold")
        self.datacenter.add_cluster(self.cluster)
        self.network = inventory.create(Network, name="vm-net")
        self.datastores = [
            inventory.create(Datastore, name=f"lun{i:02d}", capacity_gb=20000.0)
            for i in range(datastores)
        ]
        self.hosts = []
        for i in range(hosts):
            host = inventory.create(Host, name=f"esx{i:02d}")
            self.cluster.add_host(host)
            for datastore in self.datastores:
                host.mount(datastore)
            host.attach_network(self.network)
            self.server.adopt_host(host)
            self.hosts.append(host)
        self.library = TemplateLibrary(inventory)
        self.template = self.library.publish(MEDIUM_LINUX, self.datastores[0])

    def run_op(self, operation, priority=5.0):
        """Submit and wait; returns the completed Task."""
        process = self.server.submit(operation, priority=priority)
        return self.sim.run(until=process)


@pytest.fixture
def cloud():
    return SmallCloud()
