"""Tests for clone and deploy operations — the paper's pivotal asymmetry."""

import pytest

from repro.controlplane import TaskState
from repro.datacenter import PowerState, VirtualMachine
from repro.operations import CloneVM, DeployFromTemplate, OperationError

from tests.operations.conftest import SmallCloud


def clone_op(cloud, linked, name="clone-1", power_on=False):
    return CloneVM(
        cloud.template,
        name,
        cloud.hosts[0],
        cloud.datastores[1],
        linked=linked,
        power_on_after=power_on,
    )


def test_full_clone_creates_vm_with_full_backing(cloud):
    task = cloud.run_op(clone_op(cloud, linked=False))
    assert task.state == TaskState.SUCCESS
    vm = task.result
    assert isinstance(vm, VirtualMachine)
    assert not vm.is_linked_clone
    assert vm.host is cloud.hosts[0]
    assert vm.total_disk_gb == cloud.template.total_disk_gb
    assert vm.allocated_disk_gb == pytest.approx(cloud.template.total_disk_gb)
    # Bytes actually moved on the data plane.
    assert cloud.server.copy_engine.total_bytes_written > 0


def test_linked_clone_moves_no_data(cloud):
    task = cloud.run_op(clone_op(cloud, linked=True))
    vm = task.result
    assert vm.is_linked_clone
    assert vm.max_chain_depth == 2
    assert cloud.server.copy_engine.total_bytes_written == 0
    assert task.plane_seconds("data") == 0.0
    assert task.plane_seconds("control") > 0.0


def test_full_clone_dominated_by_data_plane(cloud):
    task = cloud.run_op(clone_op(cloud, linked=False))
    assert task.plane_seconds("data") > task.plane_seconds("control")


def test_linked_clone_much_faster_than_full(cloud):
    linked = cloud.run_op(clone_op(cloud, linked=True, name="linked"))
    full = cloud.run_op(clone_op(cloud, linked=False, name="full"))
    assert linked.latency < full.latency / 5


def test_clone_with_power_on(cloud):
    task = cloud.run_op(clone_op(cloud, linked=True, power_on=True))
    assert task.result.power_state == PowerState.ON


def test_clone_registers_in_inventory(cloud):
    before = cloud.server.inventory.count(VirtualMachine)
    cloud.run_op(clone_op(cloud, linked=True))
    assert cloud.server.inventory.count(VirtualMachine) == before + 1


def test_clone_from_unusable_host_fails(cloud):
    from repro.datacenter import HostState

    cloud.hosts[0].state = HostState.MAINTENANCE
    process = cloud.server.submit(clone_op(cloud, linked=True))
    with pytest.raises(OperationError, match="unusable"):
        cloud.sim.run(until=process)
    assert len(cloud.server.tasks.failed()) == 1


def test_clone_diskless_source_fails(cloud):
    bare = cloud.server.inventory.create(VirtualMachine, name="bare")
    op = CloneVM(bare, "x", cloud.hosts[0], cloud.datastores[0], linked=True)
    process = cloud.server.submit(op)
    with pytest.raises(OperationError, match="no disks"):
        cloud.sim.run(until=process)


def test_linked_clone_of_writable_vm_pays_anchor_snapshot(cloud):
    # First materialize a full clone (writable VM), then linked-clone it.
    source = cloud.run_op(clone_op(cloud, linked=False, name="writable")).result
    task = cloud.run_op(
        CloneVM(source, "second", cloud.hosts[1], cloud.datastores[1], linked=True)
    )
    phase_names = [name for name, _, _ in task.phases]
    assert "anchor_snapshot" in phase_names
    assert len(source.snapshots) == 1


def test_second_linked_clone_reuses_anchor(cloud):
    source = cloud.run_op(clone_op(cloud, linked=False, name="writable")).result
    cloud.run_op(CloneVM(source, "c1", cloud.hosts[1], cloud.datastores[1], linked=True))
    task = cloud.run_op(
        CloneVM(source, "c2", cloud.hosts[2], cloud.datastores[1], linked=True)
    )
    phase_names = [name for name, _, _ in task.phases]
    assert "anchor_snapshot" not in phase_names
    assert len(source.snapshots) == 1


def test_template_linked_clone_needs_no_snapshot(cloud):
    task = cloud.run_op(clone_op(cloud, linked=True))
    phase_names = [name for name, _, _ in task.phases]
    assert "anchor_snapshot" not in phase_names
    assert cloud.template.snapshots == []


def test_concurrent_linked_clones_share_template_anchor(cloud):
    processes = [
        cloud.server.submit(clone_op(cloud, linked=True, name=f"c{i}"))
        for i in range(10)
    ]
    cloud.sim.run()
    assert all(process.ok for process in processes)
    anchor = cloud.template.disks[0].backing
    assert anchor.children == 10


class TestDeployFromTemplate:
    def test_deploy_powers_on(self, cloud):
        task = cloud.run_op(
            DeployFromTemplate(
                cloud.template, "web-1", cloud.hosts[0], cloud.datastores[1], linked=True
            )
        )
        vm = task.result
        assert vm.power_state == PowerState.ON
        phase_names = [name for name, _, _ in task.phases]
        assert "customize_host" in phase_names
        assert "power_on" in phase_names

    def test_deploy_requires_template(self, cloud):
        non_template = cloud.server.inventory.create(VirtualMachine, name="vm")
        with pytest.raises(OperationError, match="not a template"):
            DeployFromTemplate(
                non_template, "x", cloud.hosts[0], cloud.datastores[0], linked=True
            )

    def test_deploy_full_moves_template_bytes(self, cloud):
        cloud.run_op(
            DeployFromTemplate(
                cloud.template, "db-1", cloud.hosts[0], cloud.datastores[1], linked=False
            )
        )
        written_gb = cloud.server.copy_engine.total_bytes_written / 1024**3
        assert written_gb == pytest.approx(cloud.template.total_disk_gb)


def test_clone_storm_all_succeed_and_depths_bounded():
    cloud = SmallCloud(seed=7)
    count = 40
    for index in range(count):
        cloud.server.submit(clone_op(cloud, linked=True, name=f"storm-{index}"))
    cloud.sim.run()
    done = cloud.server.tasks.succeeded()
    assert len(done) == count
    assert all(task.result.max_chain_depth == 2 for task in done)
