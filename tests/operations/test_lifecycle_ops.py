"""Tests for power, reconfigure, snapshot, and destroy operations."""

import pytest

from repro.controlplane import TaskState
from repro.datacenter import PowerState, VirtualMachine
from repro.operations import (
    CloneVM,
    CreateSnapshot,
    DeleteSnapshot,
    DestroyVM,
    OperationError,
    PowerOff,
    PowerOn,
    ReconfigureVM,
)


@pytest.fixture
def vm(cloud):
    """A linked clone placed on host 0."""
    task = cloud.run_op(
        CloneVM(cloud.template, "vm-under-test", cloud.hosts[0], cloud.datastores[1], linked=True)
    )
    return task.result


def test_power_on_then_off(cloud, vm):
    task = cloud.run_op(PowerOn(vm))
    assert task.state == TaskState.SUCCESS
    assert vm.power_state == PowerState.ON
    task = cloud.run_op(PowerOff(vm))
    assert vm.power_state == PowerState.OFF


def test_power_on_twice_fails(cloud, vm):
    cloud.run_op(PowerOn(vm))
    process = cloud.server.submit(PowerOn(vm))
    with pytest.raises(OperationError, match="already powered on"):
        cloud.sim.run(until=process)


def test_power_off_when_off_fails(cloud, vm):
    process = cloud.server.submit(PowerOff(vm))
    with pytest.raises(OperationError, match="already powered off"):
        cloud.sim.run(until=process)


def test_power_unplaced_vm_fails(cloud):
    orphan = cloud.server.inventory.create(VirtualMachine, name="orphan")
    process = cloud.server.submit(PowerOn(orphan))
    with pytest.raises(OperationError, match="not placed"):
        cloud.sim.run(until=process)


def test_reconfigure_updates_hardware(cloud, vm):
    task = cloud.run_op(ReconfigureVM(vm, vcpus=8, memory_gb=16.0))
    assert task.state == TaskState.SUCCESS
    assert vm.vcpus == 8
    assert vm.memory_gb == 16.0


def test_reconfigure_partial_update(cloud, vm):
    original_memory = vm.memory_gb
    cloud.run_op(ReconfigureVM(vm, vcpus=4))
    assert vm.vcpus == 4
    assert vm.memory_gb == original_memory


def test_snapshot_create_deepens_chain(cloud, vm):
    depth_before = vm.max_chain_depth
    task = cloud.run_op(CreateSnapshot(vm, "before-upgrade"))
    assert task.state == TaskState.SUCCESS
    assert vm.max_chain_depth == depth_before + 1
    assert len(vm.snapshots) == 1


def test_snapshot_delete_merges_delta_and_copies(cloud, vm):
    depth_before = vm.max_chain_depth  # linked clone: 2
    cloud.run_op(CreateSnapshot(vm, "s1"))
    written_before = cloud.server.copy_engine.total_bytes_written
    task = cloud.run_op(DeleteSnapshot(vm, written_gb=2.0))
    assert task.state == TaskState.SUCCESS
    assert vm.snapshots == []
    assert vm.max_chain_depth == depth_before
    # Merging the delta is a data-plane copy of the written bytes, not the
    # whole logical disk.
    moved_gb = (cloud.server.copy_engine.total_bytes_written - written_before) / 1024**3
    assert 0 < moved_gb < vm.total_disk_gb / 2
    assert task.plane_seconds("data") > 0


def test_snapshot_delete_does_not_leak_datastore_space(cloud, vm):
    datastore = cloud.datastores[1]
    used_before = datastore.used_gb
    cloud.run_op(CreateSnapshot(vm, "s1"))
    cloud.run_op(DeleteSnapshot(vm, written_gb=2.0))
    # Net growth is exactly the guest-written bytes now living in the chain.
    assert datastore.used_gb - used_before == pytest.approx(2.0)


def test_snapshot_delete_without_snapshot_fails(cloud, vm):
    process = cloud.server.submit(DeleteSnapshot(vm))
    with pytest.raises(OperationError, match="no snapshots"):
        cloud.sim.run(until=process)


def test_destroy_removes_vm_and_reclaims_space(cloud, vm):
    datastore = cloud.datastores[1]
    used_before = datastore.used_gb
    task = cloud.run_op(DestroyVM(vm))
    assert task.state == TaskState.SUCCESS
    assert vm.entity_id not in cloud.server.inventory
    assert vm.host is None
    assert vm.destroyed_at == pytest.approx(task.finished_at, abs=1.0)
    assert datastore.used_gb < used_before


def test_destroy_powered_on_vm_fails(cloud, vm):
    cloud.run_op(PowerOn(vm))
    process = cloud.server.submit(DestroyVM(vm))
    with pytest.raises(OperationError, match="powered on"):
        cloud.sim.run(until=process)


def test_destroy_linked_clone_keeps_shared_parent(cloud, vm):
    anchor = cloud.template.disks[0].backing
    # Another clone shares the anchor.
    other = cloud.run_op(
        CloneVM(cloud.template, "sibling", cloud.hosts[1], cloud.datastores[1], linked=True)
    ).result
    assert anchor.children == 2
    cloud.run_op(DestroyVM(vm))
    assert anchor.children == 1
    # Template base still allocated on its datastore.
    assert cloud.datastores[0].used_gb >= cloud.template.total_disk_gb
    assert other.entity_id in cloud.server.inventory


def test_lock_serializes_ops_on_same_vm(cloud, vm):
    """Two ops on one VM must not interleave their host phases."""
    p1 = cloud.server.submit(ReconfigureVM(vm, vcpus=4))
    p2 = cloud.server.submit(ReconfigureVM(vm, vcpus=8))
    cloud.sim.run()
    assert p1.ok and p2.ok
    assert vm.vcpus in (4, 8)
    # Lock wait shows up in the metrics.
    assert cloud.server.locks.metrics.latency("acquire_wait").count >= 2
