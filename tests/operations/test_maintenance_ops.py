"""Tests for host maintenance-mode workflows."""

import pytest

from repro.controlplane import TaskState
from repro.datacenter import HostState, PowerState
from repro.operations import (
    CloneVM,
    EnterMaintenance,
    ExitMaintenance,
    OperationError,
    PowerOn,
)


def populate(cloud, host, count, power_on=True):
    vms = []
    for index in range(count):
        vm = cloud.run_op(
            CloneVM(
                cloud.template,
                f"{host.name}-vm{index}",
                host,
                cloud.datastores[0],
                linked=True,
                power_on_after=power_on,
            )
        ).result
        vms.append(vm)
    return vms


def test_enter_maintenance_evacuates_running_vms(cloud):
    victims = populate(cloud, cloud.hosts[0], 3)
    task = cloud.run_op(
        EnterMaintenance(cloud.hosts[0], targets=cloud.hosts[1:])
    )
    assert task.state == TaskState.SUCCESS
    assert cloud.hosts[0].state == HostState.MAINTENANCE
    assert not cloud.hosts[0].vms
    for vm in victims:
        assert vm.host in cloud.hosts[1:]
        assert vm.power_state == PowerState.ON


def test_enter_maintenance_cold_relocates_off_vms(cloud):
    victims = populate(cloud, cloud.hosts[0], 2, power_on=False)
    written_before = cloud.server.copy_engine.total_bytes_written
    cloud.run_op(EnterMaintenance(cloud.hosts[0], targets=cloud.hosts[1:]))
    # Cold relocation moves no data and performs no migrations.
    assert cloud.server.copy_engine.total_bytes_written == written_before
    for vm in victims:
        assert vm.host is not cloud.hosts[0]


def test_enter_maintenance_spreads_round_robin(cloud):
    populate(cloud, cloud.hosts[0], 6)
    cloud.run_op(EnterMaintenance(cloud.hosts[0], targets=cloud.hosts[1:]))
    loads = [len(host.vms) for host in cloud.hosts[1:]]
    assert max(loads) - min(loads) <= 1


def test_enter_maintenance_without_targets_fails(cloud):
    populate(cloud, cloud.hosts[0], 1)
    process = cloud.server.submit(EnterMaintenance(cloud.hosts[0], targets=[]))
    with pytest.raises(OperationError, match="no evacuation target"):
        cloud.sim.run(until=process)
    assert cloud.hosts[0].state == HostState.CONNECTED


def test_enter_maintenance_twice_fails(cloud):
    cloud.run_op(EnterMaintenance(cloud.hosts[0], targets=cloud.hosts[1:]))
    process = cloud.server.submit(
        EnterMaintenance(cloud.hosts[0], targets=cloud.hosts[1:])
    )
    with pytest.raises(OperationError, match="is maintenance"):
        cloud.sim.run(until=process)


def test_exit_maintenance_restores_host(cloud):
    cloud.run_op(EnterMaintenance(cloud.hosts[0], targets=cloud.hosts[1:]))
    task = cloud.run_op(ExitMaintenance(cloud.hosts[0]))
    assert task.state == TaskState.SUCCESS
    assert cloud.hosts[0].is_usable


def test_exit_without_maintenance_fails(cloud):
    process = cloud.server.submit(ExitMaintenance(cloud.hosts[0]))
    with pytest.raises(OperationError, match="not in maintenance"):
        cloud.sim.run(until=process)


def test_rolling_maintenance_across_cluster(cloud):
    """The cloud-era routine: patch every host, one at a time."""
    populate(cloud, cloud.hosts[0], 2)
    populate(cloud, cloud.hosts[1], 2)
    for host in cloud.hosts:
        others = [h for h in cloud.hosts if h is not host]
        cloud.run_op(EnterMaintenance(host, targets=others))
        cloud.run_op(ExitMaintenance(host))
    assert all(host.is_usable for host in cloud.hosts)
    # All four VMs still running somewhere.
    running = sum(host.powered_on_vms for host in cloud.hosts)
    assert running == 4


class TestEvacuateDatastore:
    def _populate(self, cloud, datastore, count):
        vms = []
        for index in range(count):
            vm = cloud.run_op(
                CloneVM(
                    cloud.template,
                    f"res-{index}",
                    cloud.hosts[index % len(cloud.hosts)],
                    datastore,
                    linked=False,  # full clones so bytes actually move
                )
            ).result
            vms.append(vm)
        return vms

    def test_evacuation_moves_all_vms(self, cloud):
        from repro.operations import EvacuateDatastore

        source = cloud.datastores[0]
        target = cloud.datastores[1]
        vms = self._populate(cloud, source, 3)
        written_before = cloud.server.copy_engine.total_bytes_written
        task = cloud.run_op(EvacuateDatastore(source, targets=[target]))
        assert task.state.value == "success"
        assert task.result == 3
        for vm in vms:
            assert all(disk.datastore is target for disk in vm.disks)
        moved_gb = (
            cloud.server.copy_engine.total_bytes_written - written_before
        ) / 1024**3
        assert moved_gb == pytest.approx(3 * cloud.template.total_disk_gb)

    def test_template_not_counted_without_host(self, cloud):
        """Templates (unplaced) stay; evacuation covers placed VMs only."""
        from repro.operations import EvacuateDatastore

        source = cloud.datastores[0]  # holds the template backing
        task = cloud.run_op(EvacuateDatastore(source, targets=[cloud.datastores[1]]))
        assert task.result == 0

    def test_no_targets_fails(self, cloud):
        from repro.operations import EvacuateDatastore, OperationError

        process = cloud.server.submit(
            EvacuateDatastore(cloud.datastores[0], targets=[cloud.datastores[0]])
        )
        with pytest.raises(OperationError, match="no target"):
            cloud.sim.run(until=process)

    def test_insufficient_target_space_fails(self, cloud):
        from repro.datacenter import Datastore
        from repro.operations import EvacuateDatastore, OperationError

        source = cloud.datastores[0]
        self._populate(cloud, source, 1)
        tiny = cloud.server.inventory.create(
            Datastore, name="tiny", capacity_gb=1.0
        )
        process = cloud.server.submit(EvacuateDatastore(source, targets=[tiny]))
        with pytest.raises(OperationError, match="lacks space"):
            cloud.sim.run(until=process)
