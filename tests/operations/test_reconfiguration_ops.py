"""Tests for reconfiguration ops: rescan, add host, add datastore, network."""

import pytest

from repro.controlplane import TaskState
from repro.datacenter import Datastore, Host, HostState, Network
from repro.operations import (
    AddDatastore,
    AddHost,
    NetworkReconfig,
    OperationError,
    RescanDatastore,
)

from tests.operations.conftest import SmallCloud


def test_rescan_touches_every_mounting_host(cloud):
    task = cloud.run_op(RescanDatastore(cloud.datastores[0]))
    assert task.state == TaskState.SUCCESS
    assert task.result == len(cloud.hosts)
    for host in cloud.hosts:
        assert cloud.server.agent(host).metrics.counter("calls").value >= 1


def test_rescan_skips_unusable_hosts(cloud):
    cloud.hosts[0].state = HostState.MAINTENANCE
    task = cloud.run_op(RescanDatastore(cloud.datastores[0]))
    assert task.state == TaskState.SUCCESS
    assert cloud.server.agent(cloud.hosts[0]).metrics.counter("calls").value == 0


def test_rescan_unmounted_datastore_fails(cloud):
    lonely = cloud.server.inventory.create(Datastore, name="lonely", capacity_gb=100.0)
    process = cloud.server.submit(RescanDatastore(lonely))
    with pytest.raises(OperationError, match="no hosts"):
        cloud.sim.run(until=process)


def test_rescan_cost_grows_with_host_count():
    """R-F6 shape: rescan latency grows with the number of mounting hosts."""

    def rescan_latency(host_count):
        cloud = SmallCloud(seed=5, hosts=host_count, datastores=1)
        task = cloud.run_op(RescanDatastore(cloud.datastores[0]))
        return task.latency

    small = rescan_latency(2)
    large = rescan_latency(32)
    # Fan-out is parallel per host, but DB topology writes grow linearly.
    assert large > small


def test_add_host_mounts_and_rescans(cloud):
    new_host = Host(entity_id="host-new", name="esx99")
    task = cloud.run_op(
        AddHost(new_host, cloud.cluster, cloud.datastores, networks=[cloud.network])
    )
    assert task.state == TaskState.SUCCESS
    assert new_host in cloud.cluster.hosts
    assert new_host.entity_id in cloud.server.inventory
    assert set(new_host.datastores) == set(cloud.datastores)
    assert cloud.network in new_host.networks
    phase_names = [name for name, _, _ in task.phases]
    assert "connect_handshake" in phase_names
    assert "initial_rescan" in phase_names
    assert "network_config" in phase_names


def test_add_host_already_present_fails(cloud):
    process = cloud.server.submit(AddHost(cloud.hosts[0], cloud.cluster, []))
    with pytest.raises(OperationError, match="already in inventory"):
        cloud.sim.run(until=process)


def test_add_host_cost_grows_with_datastore_count():
    def add_latency(datastore_count):
        cloud = SmallCloud(seed=9, hosts=2, datastores=datastore_count)
        new_host = Host(entity_id="host-new", name="esx99")
        task = cloud.run_op(AddHost(new_host, cloud.cluster, cloud.datastores))
        return task.latency

    # Rescans are bounded by per-host agent slots, so more datastores mean
    # more serialized rescan batches.
    assert add_latency(32) > add_latency(1)


def test_add_datastore_mounts_on_all_hosts(cloud):
    new_ds = Datastore(entity_id="ds-new", name="lun99", capacity_gb=5000.0)
    task = cloud.run_op(AddDatastore(new_ds, cloud.hosts))
    assert task.state == TaskState.SUCCESS
    for host in cloud.hosts:
        assert new_ds in host.datastores
    assert new_ds.entity_id in cloud.server.inventory


def test_add_datastore_without_hosts_fails(cloud):
    new_ds = Datastore(entity_id="ds-new", name="lun99", capacity_gb=5000.0)
    process = cloud.server.submit(AddDatastore(new_ds, []))
    with pytest.raises(OperationError, match="no hosts"):
        cloud.sim.run(until=process)


def test_network_reconfig_pushes_to_cluster(cloud):
    vlan_net = Network(entity_id="net-new", name="tenant-42", vlan=42)
    cloud.server.inventory.register(vlan_net)
    task = cloud.run_op(NetworkReconfig(cloud.cluster, vlan_net))
    assert task.state == TaskState.SUCCESS
    for host in cloud.cluster.usable_hosts:
        assert vlan_net in host.networks


def test_network_reconfig_empty_cluster_fails(cloud):
    from repro.datacenter import Cluster

    empty = cloud.server.inventory.create(Cluster, name="empty")
    process = cloud.server.submit(NetworkReconfig(empty, cloud.network))
    with pytest.raises(OperationError, match="no usable hosts"):
        cloud.sim.run(until=process)
