"""Tests for vMotion and storage vMotion."""

import pytest

from repro.controlplane import TaskState
from repro.operations import CloneVM, MigrateVM, OperationError, PowerOn, StorageMigrateVM


@pytest.fixture
def running_vm(cloud):
    vm = cloud.run_op(
        CloneVM(cloud.template, "mobile", cloud.hosts[0], cloud.datastores[1], linked=True)
    ).result
    cloud.run_op(PowerOn(vm))
    return vm


def test_migrate_moves_vm(cloud, running_vm):
    task = cloud.run_op(MigrateVM(running_vm, cloud.hosts[1]))
    assert task.state == TaskState.SUCCESS
    assert running_vm.host is cloud.hosts[1]
    assert running_vm not in cloud.hosts[0].vms


def test_migrate_has_memory_copy_data_phase(cloud, running_vm):
    task = cloud.run_op(MigrateVM(running_vm, cloud.hosts[1]))
    data_seconds = task.plane_seconds("data")
    expected = running_vm.memory_gb * 1024**3 / cloud.server.costs.vmotion_bps
    assert data_seconds == pytest.approx(expected, rel=0.01)


def test_migrate_powered_off_vm_fails(cloud):
    vm = cloud.run_op(
        CloneVM(cloud.template, "cold", cloud.hosts[0], cloud.datastores[1], linked=True)
    ).result
    process = cloud.server.submit(MigrateVM(vm, cloud.hosts[1]))
    with pytest.raises(OperationError, match="powered-on"):
        cloud.sim.run(until=process)


def test_migrate_to_same_host_fails(cloud, running_vm):
    process = cloud.server.submit(MigrateVM(running_vm, cloud.hosts[0]))
    with pytest.raises(OperationError, match="same"):
        cloud.sim.run(until=process)


def test_migrate_to_unusable_host_fails(cloud, running_vm):
    from repro.datacenter import HostState

    cloud.hosts[1].state = HostState.DISCONNECTED
    process = cloud.server.submit(MigrateVM(running_vm, cloud.hosts[1]))
    with pytest.raises(OperationError, match="unusable"):
        cloud.sim.run(until=process)


def test_storage_migrate_moves_and_flattens(cloud, running_vm):
    assert running_vm.is_linked_clone
    target = cloud.datastores[0]
    task = cloud.run_op(StorageMigrateVM(running_vm, target))
    assert task.state == TaskState.SUCCESS
    assert running_vm.disks[0].datastore is target
    # Flattened: no more parent chain.
    assert not running_vm.is_linked_clone
    assert task.plane_seconds("data") > 0


def test_storage_migrate_releases_source_delta_space(cloud, running_vm):
    source_ds = cloud.datastores[1]
    used_before = source_ds.used_gb
    cloud.run_op(StorageMigrateVM(running_vm, cloud.datastores[0]))
    assert source_ds.used_gb < used_before
    anchor = cloud.template.disks[0].backing
    assert anchor.children == 0


def test_storage_migrate_same_datastore_is_noop_copy(cloud, running_vm):
    written_before = cloud.server.copy_engine.total_bytes_written
    task = cloud.run_op(StorageMigrateVM(running_vm, cloud.datastores[1]))
    assert task.state == TaskState.SUCCESS
    assert cloud.server.copy_engine.total_bytes_written == written_before
