"""Tests for host memory admission control."""

import pytest

from repro.cloud import PlacementEngine, PlacementError
from repro.datacenter import PowerState, VirtualDisk, VirtualMachine
from repro.operations import CloneVM, MigrateVM, OperationError, PowerOn
from repro.storage.linked_clone import create_linked_backing

from tests.operations.conftest import SmallCloud


def make_resident(cloud, host, memory_gb, powered_on=True, n=[0]):
    n[0] += 1
    vm = cloud.server.inventory.create(
        VirtualMachine,
        name=f"resident-{n[0]}",
        memory_gb=memory_gb,
        power_state=PowerState.ON if powered_on else PowerState.OFF,
    )
    backing = create_linked_backing(
        cloud.template.disks[0].backing, cloud.datastores[0]
    )
    vm.attach_disk(VirtualDisk(label="d0", backing=backing, provisioned_gb=40.0))
    vm.place_on(host)
    return vm


def test_host_memory_accounting(cloud):
    host = cloud.hosts[0]
    make_resident(cloud, host, 32.0)
    make_resident(cloud, host, 16.0, powered_on=False)
    assert host.memory_in_use_gb == 32.0
    assert host.memory_limit_gb == pytest.approx(128.0 * 1.5)
    assert host.can_admit(100.0)
    assert not host.can_admit(200.0)


def test_power_on_rejected_when_host_full(cloud):
    host = cloud.hosts[0]
    host.memory_overcommit = 1.0
    make_resident(cloud, host, 120.0)
    victim = make_resident(cloud, host, 16.0, powered_on=False)
    process = cloud.server.submit(PowerOn(victim))
    with pytest.raises(OperationError, match="cannot admit"):
        cloud.sim.run(until=process)
    assert victim.power_state == PowerState.OFF


def test_power_on_succeeds_within_overcommit(cloud):
    host = cloud.hosts[0]
    make_resident(cloud, host, 120.0)  # limit is 192 GB
    victim = make_resident(cloud, host, 16.0, powered_on=False)
    task = cloud.run_op(PowerOn(victim))
    assert task.result.power_state == PowerState.ON


def test_admission_race_caught_under_lock(cloud):
    """Two power-ons race for the last admission slot; one loses cleanly."""
    host = cloud.hosts[0]
    host.memory_overcommit = 1.0
    make_resident(cloud, host, 60.0)
    first = make_resident(cloud, host, 60.0, powered_on=False)
    second = make_resident(cloud, host, 60.0, powered_on=False)
    p1 = cloud.server.submit(PowerOn(first))
    p2 = cloud.server.submit(PowerOn(second))
    cloud.sim.run()
    outcomes = sorted([p1.ok, p2.ok])
    assert outcomes == [False, True]
    assert host.memory_in_use_gb <= host.memory_limit_gb


def test_placement_filters_by_memory(cloud):
    for host in cloud.hosts:
        host.memory_overcommit = 1.0
    # Fill all but hosts[2].
    for host in (cloud.hosts[0], cloud.hosts[1], cloud.hosts[3]):
        make_resident(cloud, host, 128.0)
    engine = PlacementEngine()
    chosen = engine.choose_host(cloud.cluster, memory_gb=64.0)
    assert chosen is cloud.hosts[2]


def test_placement_raises_when_nothing_fits(cloud):
    for host in cloud.hosts:
        host.memory_overcommit = 1.0
        make_resident(cloud, host, 128.0)
    with pytest.raises(PlacementError, match="can admit"):
        PlacementEngine().choose_host(cloud.cluster, memory_gb=8.0)


def test_migrate_rejected_when_destination_full(cloud):
    source_vm = make_resident(cloud, cloud.hosts[0], 8.0)
    destination = cloud.hosts[1]
    destination.memory_overcommit = 1.0
    make_resident(cloud, destination, 128.0)
    process = cloud.server.submit(MigrateVM(source_vm, destination))
    with pytest.raises(OperationError, match="cannot admit"):
        cloud.sim.run(until=process)


def test_ha_loses_vms_when_cluster_is_full(cloud):
    """Degraded-cluster reality: restarts fail when nothing can admit."""
    from repro.cloud import HAManager

    for host in cloud.hosts:
        host.memory_overcommit = 1.0
        make_resident(cloud, host, 124.0)
    victim_host = cloud.hosts[0]
    ha = HAManager(cloud.server, cloud.cluster)
    box = {}

    def proc():
        box["counts"] = yield from ha.fail_host(victim_host)

    cloud.sim.run(until=cloud.sim.spawn(proc()))
    assert box["counts"]["lost"] == 1
    assert box["counts"]["restarted"] == 0
