"""Calendar-queue backend: byte-identical schedules vs the binary heap.

The determinism contract: ``Simulator(queue="calendar")`` must produce
exactly the schedule ``Simulator(queue="heap")`` produces — same times,
same order, same values — no matter how the calendar resizes its buckets
internally. Tests here run the same workloads through both backends and
compare logs, including a full control-plane storm under the standard
randomized fault schedule, plus unit tests on the queue itself.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim import CalendarQueue, Event, Simulator
from repro.sim.events import CANCELLED
from repro.storage import FairShareLink

from tests.sim.test_fastpath import _mixed_workload


# -- differential: mixed process workloads ---------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
def test_calendar_schedule_identical_to_heap(seed):
    heap_log = _mixed_workload(Simulator(queue="heap"), seed)
    calendar_log = _mixed_workload(Simulator(queue="calendar"), seed)
    assert calendar_log == heap_log
    assert len(calendar_log) > 0


@pytest.mark.parametrize("seed", [3, 11])
def test_calendar_identical_without_fast_resume(seed):
    heap_log = _mixed_workload(Simulator(queue="heap", fast_resume=False), seed)
    calendar_log = _mixed_workload(Simulator(queue="calendar", fast_resume=False), seed)
    assert calendar_log == heap_log


def _storm_workload(sim: Simulator, seed: int) -> list:
    """Timers over wildly mixed horizons plus cancel churn.

    Exercises the calendar's resize (thousands of standing timers), the
    sparse-year fallback (horizon jumps), and lazy cancellation pruning.
    """
    rng = random.Random(seed)
    log: list = []
    armed: list[Event] = []

    def fire(event):
        log.append((sim.now, "fire", event._value))

    def driver():
        for step in range(400):
            horizon = rng.choice((0.01, 1.0, 60.0, 3600.0, 86_400.0))
            for index in range(rng.randint(1, 6)):
                event = Event(sim)
                event.callbacks.append(fire)
                event.succeed(
                    value=(step, index), delay=round(rng.uniform(0.0, horizon), 4)
                )
                armed.append(event)
            if armed and rng.random() < 0.4:
                victim = armed.pop(rng.randrange(len(armed)))
                if victim._state != "processed":
                    victim.cancel()
                    log.append((sim.now, "cancel"))
            yield sim.timeout(round(rng.uniform(0.0, 5.0), 4))
        log.append((sim.now, "driver-done"))

    sim.spawn(driver())
    sim.run()
    return log


@pytest.mark.parametrize("seed", [0, 5, 13, 99])
def test_cancel_storm_schedule_identical(seed):
    heap_log = _storm_workload(Simulator(queue="heap"), seed)
    calendar_log = _storm_workload(Simulator(queue="calendar"), seed)
    assert calendar_log == heap_log
    assert any(entry[1] == "cancel" for entry in calendar_log)


@pytest.mark.parametrize("queue", ["heap", "calendar"])
def test_fair_share_churn_bounded_depth(queue):
    sim = Simulator(queue=queue)
    link = FairShareLink(sim, capacity_bps=1e6)
    done = []

    def submit(index):
        yield sim.timeout(index * 0.01)
        yield link.transfer(5e4)
        done.append(sim.queue_depth)

    for index in range(200):
        sim.spawn(submit(index))
    sim.run()
    assert len(done) == 200
    assert max(done) < 700  # cancel hygiene holds on both backends


# -- differential: hypothesis property -------------------------------------


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(seed=st.integers(min_value=0, max_value=2**20))
def test_property_schedules_identical(seed):
    heap_log = _storm_workload(Simulator(queue="heap"), seed)
    calendar_log = _storm_workload(Simulator(queue="calendar"), seed)
    assert calendar_log == heap_log


# -- differential: control-plane storm under the standard fault schedule ----


def _fault_storm(queue: str, seed: int) -> tuple:
    from repro.core.experiments import StormRig
    from repro.faults import FaultInjector, FaultTargets, random_fault_schedule

    duration = 240.0
    rig = StormRig(seed=seed, hosts=4, datastores=2, queue=queue)
    schedule = random_fault_schedule(random.Random(seed), duration)
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(rig.server),
        schedule,
        rng=random.Random(seed + 1),
    ).start()
    summary = rig.closed_loop_storm(total=24, concurrency=6, linked=True)
    rig.sim.run(until=rig.sim.spawn(injector.drain(), name="drain"))
    rig.sim.run()
    tasks = rig.server.tasks
    tasks.assert_accounted()
    ledger = tuple(
        (task.task_id, task.state.value, task.started_at, task.finished_at)
        for task in tasks.tasks
    )
    return rig.sim.now, summary, ledger


@pytest.mark.parametrize("seed", [0, 7])
def test_fault_schedule_storm_identical(seed):
    assert _fault_storm("calendar", seed) == _fault_storm("heap", seed)


# -- backend selection ------------------------------------------------------


def test_heap_is_the_default(monkeypatch):
    monkeypatch.delenv("REPRO_SIM_QUEUE", raising=False)
    sim = Simulator()
    assert sim.queue_backend == "heap"
    assert sim._calendar is None


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv("REPRO_SIM_QUEUE", "calendar")
    assert Simulator().queue_backend == "calendar"
    # An explicit argument beats the environment.
    assert Simulator(queue="heap").queue_backend == "heap"


def test_unknown_backend_rejected():
    with pytest.raises(ValueError):
        Simulator(queue="skiplist")


def test_queue_depth_and_deprecated_alias():
    sim = Simulator(queue="calendar")
    sim.timeout(1.0)
    sim.timeout(2.0)
    assert sim.queue_depth == 2
    with pytest.warns(DeprecationWarning):
        assert sim.heap_size == 2


# -- CalendarQueue unit tests ----------------------------------------------


class _Entry:
    """Stand-in event carrying only the state the queue looks at."""

    __slots__ = ("_state",)

    def __init__(self):
        self._state = "triggered"


def _drain(queue):
    out = []
    while True:
        head = queue.peek()
        if head is None:
            break
        assert queue.pop() is head
        out.append(head[:3])
    return out


def test_pop_order_is_total_order_across_resizes():
    rng = random.Random(1)
    queue = CalendarQueue()
    entries = []
    for sequence in range(3_000):
        time = round(rng.uniform(0.0, 50_000.0), 3)
        entry = (time, rng.randint(0, 1), sequence, _Entry())
        entries.append(entry)
        queue.push(entry)
    assert len(queue) == 3_000
    queue.peek()  # growth is deferred to serve time
    assert queue.buckets > 16  # growth happened
    assert _drain(queue) == sorted(entry[:3] for entry in entries)
    assert len(queue) == 0


def test_interleaved_push_pop_matches_sorted_order():
    rng = random.Random(2)
    queue = CalendarQueue()
    reference = []
    sequence = 0
    clock = 0.0
    for _ in range(2_000):
        if reference and rng.random() < 0.5:
            head = queue.pop()
            reference.sort()
            assert head[:3] == reference.pop(0)
            clock = head[0]
        else:
            sequence += 1
            entry = (clock + round(rng.uniform(0.0, 100.0), 3), 1, sequence, _Entry())
            queue.push(entry)
            reference.append(entry[:3])
    assert _drain(queue) == sorted(reference)


def test_cancelled_entries_are_compacted():
    queue = CalendarQueue()
    dead = []
    for sequence in range(500):
        entry = (float(sequence), 1, sequence, _Entry())
        queue.push(entry)
        if sequence % 2:
            dead.append(entry)
    for entry in dead:
        entry[3]._state = CANCELLED
        queue.note_cancelled()
    # The cancel-counter rule triggered a compacting rebuild.
    assert queue.dead == 0
    assert len(queue) == 250
    assert [key[0] for key in _drain(queue)] == [float(n) for n in range(0, 500, 2)]


def test_sparse_far_future_head_found():
    queue = CalendarQueue()
    far = (1e9, 1, 1, _Entry())
    queue.push(far)
    assert queue.peek() is far
    near = (5.0, 1, 2, _Entry())
    queue.push(near)  # lands behind the jumped day pointer
    assert queue.peek() is near
    assert queue.pop() is near
    assert queue.pop() is far
    assert queue.peek() is None


def test_pop_empty_raises():
    with pytest.raises(IndexError):
        CalendarQueue().pop()


def test_identical_times_preserve_sequence_order():
    queue = CalendarQueue()
    entries = [(42.0, 1, sequence, _Entry()) for sequence in range(200)]
    shuffled = entries[:]
    random.Random(3).shuffle(shuffled)
    for entry in shuffled:
        queue.push(entry)
    assert _drain(queue) == [entry[:3] for entry in entries]
