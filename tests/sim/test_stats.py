"""Unit tests for metrics primitives."""

import pytest

from repro.sim import Counter, Gauge, Histogram, LatencyRecorder, MetricsRegistry, Simulator, TimeSeries


def test_counter_accumulates():
    counter = Counter("ops")
    counter.add()
    counter.add(4)
    assert counter.value == 5


def test_counter_rejects_decrease():
    counter = Counter("ops")
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.add(-1)


def test_counter_rejects_non_finite():
    counter = Counter("ops")
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError, match="must be finite"):
            counter.add(bad)
    assert counter.value == 0.0


def test_gauge_rejects_non_finite():
    sim = Simulator()
    gauge = Gauge(sim, "depth")
    gauge.set(3.0)
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError, match="must be finite"):
            gauge.set(bad)
        with pytest.raises(ValueError, match="must be finite"):
            gauge.add(bad)
    assert gauge.value == 3.0
    assert gauge.series() == [(0.0, 0.0), (0.0, 3.0)]


def test_latency_rejects_non_finite():
    recorder = LatencyRecorder("lat")
    recorder.record(1.0)
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ValueError, match="must be finite"):
            recorder.record(bad)
    # A rejected sample must not corrupt the sorted invariant or the sum.
    assert recorder.count == 1
    assert recorder.mean == 1.0


def test_gauge_time_average():
    sim = Simulator()
    gauge = Gauge(sim, "depth")

    def proc():
        gauge.set(2.0)          # level 2 on [0, 4)
        yield sim.timeout(4.0)
        gauge.set(6.0)          # level 6 on [4, 8)
        yield sim.timeout(4.0)
        gauge.set(0.0)

    sim.spawn(proc())
    sim.run()
    assert gauge.time_average() == pytest.approx((2 * 4 + 6 * 4) / 8)
    assert gauge.maximum == 6.0


def test_gauge_time_average_since_window():
    sim = Simulator()
    gauge = Gauge(sim, "depth")

    def proc():
        gauge.set(10.0)
        yield sim.timeout(5.0)
        gauge.set(0.0)
        yield sim.timeout(5.0)

    sim.spawn(proc())
    sim.run()
    assert gauge.time_average(since=5.0) == pytest.approx(0.0)
    assert gauge.time_average(since=0.0) == pytest.approx(5.0)


def test_gauge_add_is_relative():
    sim = Simulator()
    gauge = Gauge(sim, "depth")
    gauge.add(3)
    gauge.add(-1)
    assert gauge.value == 2


def test_latency_percentiles():
    recorder = LatencyRecorder("lat")
    for value in [1.0, 2.0, 3.0, 4.0, 5.0]:
        recorder.record(value)
    assert recorder.percentile(0.0) == 1.0
    assert recorder.percentile(0.5) == 3.0
    assert recorder.percentile(1.0) == 5.0
    assert recorder.percentile(0.25) == 2.0
    assert recorder.mean == 3.0
    assert recorder.count == 5


def test_latency_empty_percentile_is_zero():
    recorder = LatencyRecorder("lat")
    assert recorder.percentile(0.99) == 0.0
    assert recorder.mean == 0.0


def test_latency_rejects_bad_inputs():
    recorder = LatencyRecorder("lat")
    with pytest.raises(ValueError):
        recorder.record(-1.0)
    recorder.record(1.0)
    with pytest.raises(ValueError):
        recorder.percentile(1.5)


def test_latency_cdf_is_monotone_and_complete():
    recorder = LatencyRecorder("lat")
    for value in range(100):
        recorder.record(float(value))
    cdf = recorder.cdf(points=10)
    fractions = [fraction for _, fraction in cdf]
    assert fractions == sorted(fractions)
    assert cdf[-1][1] == 1.0
    values = [value for value, _ in cdf]
    assert values == sorted(values)


def test_histogram_binning():
    histogram = Histogram("depth", edges=[0, 1, 2, 4])
    for value in [0, 0.5, 1, 3, 5, -1]:
        histogram.record(value)
    assert histogram.counts == [2, 1, 1]
    assert histogram.overflow == 1
    assert histogram.underflow == 1
    assert histogram.total == 6


def test_histogram_validates_edges():
    with pytest.raises(ValueError):
        Histogram("bad", edges=[2, 1])
    with pytest.raises(ValueError):
        Histogram("bad", edges=[1])


def test_timeseries_bins_and_gap_fill():
    series = TimeSeries("arrivals", bin_width=10.0)
    series.record(1.0)
    series.record(5.0)
    series.record(35.0, amount=2.0)
    bins = series.bins()
    assert bins == [(0.0, 2.0), (10.0, 0.0), (20.0, 0.0), (30.0, 2.0)]


def test_timeseries_empty():
    series = TimeSeries("arrivals", bin_width=10.0)
    assert series.bins() == []


def test_timeseries_validates_width():
    with pytest.raises(ValueError):
        TimeSeries("bad", bin_width=0.0)


def test_registry_reuses_metrics_by_name():
    sim = Simulator()
    registry = MetricsRegistry(sim, prefix="host1")
    first = registry.counter("ops")
    second = registry.counter("ops")
    assert first is second
    assert "ops" in registry
    assert "host1.ops" in registry.all()


def test_registry_prefix_isolation():
    sim = Simulator()
    one = MetricsRegistry(sim, prefix="a")
    two = MetricsRegistry(sim, prefix="b")
    one.counter("ops").add(5)
    assert two.counter("ops").value == 0
