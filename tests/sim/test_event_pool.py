"""Timeout pooling: recycle-safety and schedule neutrality.

A fired :class:`Timeout` is recycled onto the simulator's free list only
when the kernel loop holds the sole remaining references (an exact
refcount check). Anything still reachable — a process's yielded event, a
condition constituent, a user variable — must never be recycled, and
pooling must never change a schedule (it does not touch sequence
numbering).
"""

import pytest

from repro.sim import AllOf, Simulator, Timeout

from tests.sim.test_fastpath import _mixed_workload


def _drive_chain(sim, cycles=200):
    def chain():
        for _ in range(cycles):
            yield sim.timeout(0.5)

    sim.spawn(chain())
    sim.run()


@pytest.mark.parametrize("queue", ["heap", "calendar"])
def test_timeouts_are_recycled(queue):
    sim = Simulator(queue=queue)
    _drive_chain(sim)
    # The chain reuses a tiny working set instead of 200 fresh objects.
    assert sim._timeout_pool
    assert len(sim._timeout_pool) < 8


@pytest.mark.parametrize("queue", ["heap", "calendar"])
def test_pool_objects_are_reused(queue):
    sim = Simulator(queue=queue)
    seen = set()

    def chain():
        for _ in range(50):
            timeout = sim.timeout(1.0)
            seen.add(id(timeout))
            yield timeout

    sim.spawn(chain())
    sim.run()
    assert len(seen) < 10  # ids repeat: the pool is actually serving


def test_pool_can_be_disabled():
    sim = Simulator(pool_events=False)
    _drive_chain(sim)
    assert sim._timeout_pool is None


@pytest.mark.parametrize("seed", [0, 1, 7, 42])
def test_pooling_never_changes_the_schedule(seed):
    pooled = _mixed_workload(Simulator(pool_events=True), seed)
    unpooled = _mixed_workload(Simulator(pool_events=False), seed)
    assert pooled == unpooled


def test_held_timeout_is_never_recycled():
    sim = Simulator()
    held = sim.timeout(1.0, value="mine")
    sim.run()
    assert held not in sim._timeout_pool
    assert held.processed
    assert held.value == "mine"
    # A later timeout must be a different object, not `held` re-armed.
    fresh = sim.timeout(1.0)
    assert fresh is not held
    assert held.value == "mine"


def test_condition_constituents_are_never_recycled():
    sim = Simulator()
    results = []

    def waiter():
        gate = AllOf(sim, [sim.timeout(1.0, value="a"), sim.timeout(2.0, value="b")])
        got = yield gate
        results.append(sorted(got.values()))

    sim.spawn(waiter())
    sim.run()
    # The AllOf still references both timeouts, so neither was recycled.
    assert results == [["a", "b"]]
    assert len(sim._timeout_pool) == 0


def test_recycled_timeout_comes_back_clean():
    sim = Simulator()
    stale_ids = []

    def first():
        timeout = sim.timeout(3.0, value="stale")
        timeout.name = "stale-name"
        stale_ids.append(id(timeout))
        yield timeout

    sim.spawn(first())
    sim.run()
    reused = sim.timeout(1.0)
    assert id(reused) in stale_ids  # genuinely the recycled object
    assert reused._value is None
    assert reused._exception is None
    assert reused._name is None
    assert reused.delay == 1.0
    assert reused.callbacks == []
    assert reused.name == "timeout(1.0)"


def test_recycled_timeout_rejects_negative_delay():
    sim = Simulator()
    _drive_chain(sim, cycles=5)
    assert sim._timeout_pool
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_direct_timeout_construction_still_works():
    sim = Simulator()
    fired = []
    timeout = Timeout(sim, 2.0, value=7)
    timeout.callbacks.append(lambda event: fired.append(event.value))
    sim.run()
    assert fired == [7]


def test_subclassed_timeouts_are_not_pooled():
    class Tagged(Timeout):
        __slots__ = ("tag",)

        def __init__(self, sim, delay):
            super().__init__(sim, delay)
            self.tag = "x"

    sim = Simulator()
    Tagged(sim, 1.0)
    sim.run()
    assert len(sim._timeout_pool) == 0


def test_cancelled_timeouts_are_not_pooled():
    sim = Simulator()
    timeout = sim.timeout(1.0)
    timeout.cancel()
    del timeout
    sim.timeout(2.0)
    sim.run()
    # The cancelled entry was pruned, never recycled; the live one fired
    # with nobody holding it and was pooled.
    assert len(sim._timeout_pool) == 1
    assert sim._timeout_pool[0]._state == "processed"
