"""Unit tests for named random streams."""

from repro.sim import RandomStreams
from repro.sim.random import bounded, exponential, lognormal_from_median, pareto

import pytest


def test_same_seed_same_stream():
    a = RandomStreams(seed=1).stream("arrivals")
    b = RandomStreams(seed=1).stream("arrivals")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_names_are_independent():
    streams = RandomStreams(seed=1)
    a = streams.stream("arrivals")
    b = streams.stream("lifetimes")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_different_seeds_differ():
    a = RandomStreams(seed=1).stream("x")
    b = RandomStreams(seed=2).stream("x")
    assert a.random() != b.random()


def test_stream_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")


def test_spawn_child_is_independent():
    parent = RandomStreams(seed=1)
    child = parent.spawn("worker")
    assert parent.stream("x").random() != child.stream("x").random()


def test_exponential_mean_rough():
    rng = RandomStreams(seed=3).stream("exp")
    samples = [exponential(rng, 10.0) for _ in range(20000)]
    mean = sum(samples) / len(samples)
    assert 9.0 < mean < 11.0


def test_exponential_nonpositive_mean_is_zero():
    rng = RandomStreams(seed=3).stream("exp")
    assert exponential(rng, 0.0) == 0.0
    assert exponential(rng, -5.0) == 0.0


def test_lognormal_median_rough():
    rng = RandomStreams(seed=4).stream("ln")
    samples = sorted(lognormal_from_median(rng, 8.0, 0.5) for _ in range(20001))
    median = samples[len(samples) // 2]
    assert 7.0 < median < 9.0


def test_lognormal_nonpositive_median_is_zero():
    rng = RandomStreams(seed=4).stream("ln")
    assert lognormal_from_median(rng, 0.0, 0.5) == 0.0


def test_bounded_clamps():
    assert bounded(5.0, 0.0, 1.0) == 1.0
    assert bounded(-5.0, 0.0, 1.0) == 0.0
    assert bounded(0.5, 0.0, 1.0) == 0.5


def test_pareto_lower_bound_is_scale():
    rng = RandomStreams(seed=5).stream("p")
    samples = [pareto(rng, shape=2.0, scale=3.0) for _ in range(1000)]
    assert min(samples) >= 3.0


def test_pareto_validates_parameters():
    rng = RandomStreams(seed=5).stream("p")
    with pytest.raises(ValueError):
        pareto(rng, shape=0.0, scale=1.0)
    with pytest.raises(ValueError):
        pareto(rng, shape=1.0, scale=0.0)
