"""Unit tests for the DES kernel: event loop, processes, interrupts."""

import pytest

from repro.sim import AllOf, AnyOf, Event, EventCancelled, Interrupt, Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_time_starts_at_custom_origin():
    sim = Simulator(start=100.0)
    assert sim.now == 100.0


def test_timeout_advances_clock():
    sim = Simulator()
    done = []

    def proc():
        yield sim.timeout(5.0)
        done.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert done == [5.0]


def test_timeout_rejects_negative_delay():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    sim = Simulator()

    def proc():
        while True:
            yield sim.timeout(10.0)

    sim.spawn(proc())
    sim.run(until=25.0)
    assert sim.now == 25.0


def test_run_until_past_time_raises():
    sim = Simulator()
    sim.spawn(iter_timeout(sim, 10.0))
    sim.run(until=10.0)
    with pytest.raises(ValueError):
        sim.run(until=5.0)


def iter_timeout(sim, delay):
    yield sim.timeout(delay)


def test_process_return_value_via_run_until_event():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        return "result"

    process = sim.spawn(proc())
    assert sim.run(until=process) == "result"


def test_nested_process_wait():
    sim = Simulator()
    log = []

    def child():
        yield sim.timeout(3.0)
        return 42

    def parent():
        value = yield sim.spawn(child())
        log.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert log == [(3.0, 42)]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def child():
        yield sim.timeout(1.0)
        raise ValueError("boom")

    def parent():
        with pytest.raises(ValueError, match="boom"):
            yield sim.spawn(child())
        return "handled"

    parent_proc = sim.spawn(parent())
    assert sim.run(until=parent_proc) == "handled"


def test_unhandled_process_exception_fails_process_event():
    sim = Simulator()

    def proc():
        yield sim.timeout(1.0)
        raise RuntimeError("unhandled")

    process = sim.spawn(proc())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run(until=process)


def test_spawn_order_preserved_at_same_time():
    sim = Simulator()
    order = []

    def proc(tag):
        yield sim.timeout(0.0)
        order.append(tag)

    for tag in "abc":
        sim.spawn(proc(tag))
    sim.run()
    assert order == ["a", "b", "c"]


def test_event_succeed_wakes_waiter():
    sim = Simulator()
    gate = sim.event("gate")
    log = []

    def waiter():
        value = yield gate
        log.append((sim.now, value))

    def opener():
        yield sim.timeout(7.0)
        gate.succeed("open")

    sim.spawn(waiter())
    sim.spawn(opener())
    sim.run()
    assert log == [(7.0, "open")]


def test_event_fail_raises_in_waiter():
    sim = Simulator()
    gate = sim.event()

    def waiter():
        with pytest.raises(IOError):
            yield gate
        return True

    def failer():
        yield sim.timeout(1.0)
        gate.fail(IOError("down"))

    waiter_proc = sim.spawn(waiter())
    sim.spawn(failer())
    assert sim.run(until=waiter_proc) is True


def test_event_double_trigger_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed(1)
    with pytest.raises(RuntimeError):
        event.succeed(2)
    with pytest.raises(RuntimeError):
        event.fail(ValueError())


def test_fail_requires_exception_instance():
    sim = Simulator()
    with pytest.raises(TypeError):
        sim.event().fail("not an exception")


def test_cancelled_event_raises_in_waiter():
    sim = Simulator()
    gate = sim.event("gate")

    def waiter():
        with pytest.raises(EventCancelled):
            yield gate
        return "saw-cancel"

    def canceller():
        yield sim.timeout(1.0)
        gate.cancel()
        gate2 = sim.event()
        gate2.succeed()
        yield gate2

    waiter_proc = sim.spawn(waiter())
    sim.spawn(canceller())
    # The waiter is parked on a cancelled event; it is only resumed if the
    # event would have fired. Cancel means never: the simulation runs dry
    # with the waiter still parked.
    sim.run()
    assert not waiter_proc.triggered


def test_interrupt_raises_inside_process():
    sim = Simulator()
    log = []

    def victim():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append((sim.now, interrupt.cause))

    def attacker(victim_proc):
        yield sim.timeout(5.0)
        victim_proc.interrupt("host failure")

    victim_proc = sim.spawn(victim())
    sim.spawn(attacker(victim_proc))
    sim.run()
    assert log == [(5.0, "host failure")]


def test_interrupt_finished_process_is_error():
    sim = Simulator()

    def quick():
        yield sim.timeout(1.0)

    process = sim.spawn(quick())
    sim.run()
    with pytest.raises(RuntimeError):
        process.interrupt()


def test_yield_non_event_fails_process():
    sim = Simulator()

    def bad():
        yield 42

    process = sim.spawn(bad())
    with pytest.raises(TypeError):
        sim.run(until=process)


def test_yield_event_from_other_simulator_fails():
    sim_a = Simulator()
    sim_b = Simulator()

    def bad():
        yield sim_b.timeout(1.0)

    process = sim_a.spawn(bad())
    with pytest.raises(RuntimeError):
        sim_a.run(until=process)


def test_allof_waits_for_every_event():
    sim = Simulator()
    times = []

    def proc():
        first = sim.timeout(2.0, value="a")
        second = sim.timeout(5.0, value="b")
        result = yield AllOf(sim, [first, second])
        times.append(sim.now)
        return sorted(result.values())

    process = sim.spawn(proc())
    assert sim.run(until=process) == ["a", "b"]
    assert times == [5.0]


def test_anyof_fires_on_first():
    sim = Simulator()

    def proc():
        slow = sim.timeout(10.0, value="slow")
        fast = sim.timeout(1.0, value="fast")
        result = yield AnyOf(sim, [slow, fast])
        return (sim.now, list(result.values()))

    process = sim.spawn(proc())
    assert sim.run(until=process) == (1.0, ["fast"])


def test_empty_allof_succeeds_immediately():
    sim = Simulator()

    def proc():
        result = yield AllOf(sim, [])
        return result

    process = sim.spawn(proc())
    assert sim.run(until=process) == {}


def test_allof_fails_if_constituent_fails():
    sim = Simulator()
    bad = sim.event()

    def proc():
        condition = AllOf(sim, [sim.timeout(5.0), bad])
        with pytest.raises(ValueError, match="nope"):
            yield condition
        return "caught"

    def failer():
        yield sim.timeout(1.0)
        bad.fail(ValueError("nope"))

    process = sim.spawn(proc())
    sim.spawn(failer())
    assert sim.run(until=process) == "caught"


def test_run_until_event_deadlock_detected():
    sim = Simulator()
    never = sim.event()

    def proc():
        yield never

    process = sim.spawn(proc())
    with pytest.raises(RuntimeError, match="ran dry"):
        sim.run(until=process)


def test_step_on_empty_schedule_raises():
    sim = Simulator()
    with pytest.raises(RuntimeError):
        sim.step()


def test_peek_empty_is_infinite():
    sim = Simulator()
    assert sim.peek() == float("inf")


def test_determinism_same_schedule_twice():
    def build_and_run():
        sim = Simulator()
        log = []

        def proc(tag, delay):
            yield sim.timeout(delay)
            log.append((sim.now, tag))
            yield sim.timeout(delay)
            log.append((sim.now, tag))

        for index in range(10):
            sim.spawn(proc(index, 1.0 + index % 3))
        sim.run()
        return log

    assert build_and_run() == build_and_run()
