"""Tests for the kernel fast path: urgent resume queue + heap hygiene.

The fast path replaces per-spawn bootstrap events, per-processed-yield
relay events, and per-interrupt events with a direct same-tick resume
FIFO. The determinism contract says the schedule must be *identical* to
the event-object path (``Simulator(fast_resume=False)``), so most tests
here run the same workload through both kernels and compare logs.
"""

import random

import pytest

from repro.sim import AllOf, Event, EventCancelled, Interrupt, Resource, Simulator
from repro.storage import FairShareLink


def _mixed_workload(sim: Simulator, seed: int) -> list:
    """A messy-but-deterministic workload touching every resume path.

    All randomness is drawn up front so the plan is identical across
    kernels; the log records (time, tag) at every step.
    """
    rng = random.Random(seed)
    log: list = []
    plans = [
        [round(rng.uniform(0.0, 3.0), 3) for _ in range(rng.randint(1, 5))]
        for _ in range(rng.randint(3, 8))
    ]

    def child(tag, delays):
        for delay in delays:
            yield sim.timeout(delay)
            log.append((sim.now, "tick", tag))
        return tag

    def parent():
        children = [
            sim.spawn(child(index, delays), name=f"child-{index}")
            for index, delays in enumerate(plans)
        ]
        for proc in children:
            value = yield proc
            log.append((sim.now, "join", value))
        # Joining finished processes again exercises the same-tick
        # (urgent FIFO / relay event) resume path, repeatedly.
        for proc in children:
            value = yield proc
            log.append((sim.now, "rejoin", value))
        gate = sim.event("gate")
        gate.succeed("open")
        yield sim.timeout(0.0)
        value = yield gate  # processed event yield
        log.append((sim.now, "gate", value))

    sim.spawn(parent(), name="parent")
    sim.run()
    return log


@pytest.mark.parametrize("seed", [0, 1, 2, 7, 42])
def test_fast_path_schedule_identical_to_event_path(seed):
    """Same seed => identical event order with and without the fast path."""
    fast = _mixed_workload(Simulator(fast_resume=True), seed)
    slow = _mixed_workload(Simulator(fast_resume=False), seed)
    assert fast == slow
    assert len(fast) > 0


def test_fast_path_is_the_default():
    assert Simulator()._fast_resume is True


def test_same_tick_resume_of_processed_event():
    sim = Simulator()
    log = []
    gate = sim.event("gate")
    gate.succeed("value")

    def proc():
        yield sim.timeout(1.0)  # gate is processed by now
        result = yield gate
        log.append((sim.now, result))

    sim.spawn(proc())
    sim.run()
    assert log == [(1.0, "value")]


@pytest.mark.parametrize("fast", [True, False])
def test_interrupt_during_same_tick_resume(fast):
    """An interrupt landing after a deferred resume still lands exactly once."""
    sim = Simulator(fast_resume=fast)
    log = []
    gate = sim.event("gate")
    gate.succeed("v")

    def victim():
        yield sim.timeout(1.0)
        value = yield gate  # processed: resume goes through the urgent queue
        log.append(("resumed", sim.now, value))
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    def attacker(target):
        yield sim.timeout(1.0)
        target.interrupt("cause")

    target = sim.spawn(victim())
    sim.spawn(attacker(target))
    sim.run()
    assert log == [("resumed", 1.0, "v"), ("interrupted", 1.0, "cause")]


@pytest.mark.parametrize("fast", [True, False])
def test_interrupt_before_same_tick_resume_drains(fast):
    """Interrupt queued *before* the deferred resume wins; the stale resume
    entry must not double-advance the generator."""
    sim = Simulator(fast_resume=fast)
    log = []
    gate = sim.event("gate")
    gate.succeed("v")

    def attacker(target_box):
        yield sim.timeout(1.0)
        target_box[0].interrupt("early")

    def victim():
        try:
            yield sim.timeout(1.0)
            value = yield gate
            log.append(("resumed", value))
            yield sim.timeout(5.0)
            log.append(("slept",))
        except Interrupt as interrupt:
            log.append(("interrupted", sim.now, interrupt.cause))

    box = []
    sim.spawn(attacker(box))  # spawned first: its t=1.0 wake precedes victim's
    box.append(sim.spawn(victim()))
    sim.run()
    # The attacker wakes first at t=1.0 and interrupts while the victim is
    # still parked on its own timeout — the victim never reaches the gate.
    assert log == [("interrupted", 1.0, "early")]


@pytest.mark.parametrize("fast", [True, False])
def test_withdraw_on_interrupt_during_same_tick_grant(fast):
    """A request granted in the same tick its owner is interrupted — with the
    interrupt sequenced *before* the grant's callbacks — must hand the slot
    on, not leak it."""
    sim = Simulator(fast_resume=fast)
    resource = Resource(sim, capacity=1, name="slot")
    log = []
    waiter_proc = None

    def attacker():
        yield sim.timeout(1.0)
        waiter_proc.interrupt("die")  # queued before holder's release below

    def holder():
        request = resource.request()
        yield request
        yield sim.timeout(1.0)
        resource.release(request)  # grants waiter in the same tick

    def waiter():
        request = resource.request()
        try:
            yield request
            log.append(("held", sim.now))
        except Interrupt:
            log.append(("interrupted", sim.now))

    def follower():
        yield sim.timeout(0.5)
        request = resource.request()
        yield request
        log.append(("granted", sim.now))
        resource.release(request)

    sim.spawn(attacker())  # spawned first: its t=1.0 wake precedes the release
    sim.spawn(holder())
    waiter_proc = sim.spawn(waiter())
    sim.spawn(follower())
    sim.run()
    # The waiter was granted the slot and interrupted in the same tick; the
    # kernel must release the granted-but-unconsumed slot to the follower.
    assert log == [("interrupted", 1.0), ("granted", 1.0)]
    assert resource.in_use == 0


@pytest.mark.parametrize("fast", [True, False])
def test_interrupt_while_queued_withdraws(fast):
    sim = Simulator(fast_resume=fast)
    resource = Resource(sim, capacity=1)

    def holder():
        request = resource.request()
        yield request
        yield sim.timeout(10.0)
        resource.release(request)

    def waiter():
        request = resource.request()
        yield request

    sim.spawn(holder())
    waiter_proc = sim.spawn(waiter())

    def attacker():
        yield sim.timeout(1.0)
        waiter_proc.interrupt("give up")

    sim.spawn(attacker())
    with pytest.raises(Interrupt):
        sim.run(until=waiter_proc)
    assert resource.queue_depth == 0


# -- heap hygiene -----------------------------------------------------------


def test_cancel_heavy_run_keeps_heap_bounded():
    """FairShareLink-style cancel/rearm storms must not accrete dead entries."""
    sim = Simulator()
    peaks = []

    def driver():
        timer = None
        for _ in range(5_000):
            if timer is not None:
                timer.cancel()
            timer = Event(sim)
            timer.succeed(delay=1_000.0)
            peaks.append(sim.queue_depth)
            yield sim.timeout(0.01)

    sim.spawn(driver())
    sim.run()
    assert max(peaks) < 200  # without compaction this reaches ~5000


def test_fair_share_link_heap_bounded():
    sim = Simulator()
    link = FairShareLink(sim, capacity_bps=1e6)
    peaks = []

    def submit(index):
        yield sim.timeout(index * 0.01)
        yield link.transfer(5e4)
        peaks.append(sim.queue_depth)

    for index in range(300):
        sim.spawn(submit(index))
    sim.run()
    assert len(peaks) == 300
    assert max(peaks) < 700  # ~2 entries per in-flight transfer, not per cancel


def test_compaction_preserves_order():
    """Compacting dead entries must not disturb the live schedule."""
    sim = Simulator()
    order = []
    live = []
    # 100 live timers interleaved with 200 cancelled events — enough dead
    # weight to trigger at least one in-place compaction.
    for index in range(100):
        event = Event(sim)
        event.callbacks.append(lambda _e, i=index: order.append(i))
        event.succeed(delay=float(index))
        live.append(event)
        for _ in range(2):
            dead = Event(sim)
            dead.succeed(delay=float(index) + 0.5)
            dead.cancel()
    sim.run()
    assert order == list(range(100))


def test_peek_and_step_agree_after_cancellations():
    sim = Simulator()
    cancelled = Event(sim)
    cancelled.succeed(delay=1.0)
    kept = Event(sim)
    fired = []
    kept.callbacks.append(lambda _e: fired.append(sim.now))
    kept.succeed(delay=2.0)
    cancelled.cancel()
    assert sim.peek() == 2.0
    sim.step()
    assert fired == [2.0]


def test_determinism_under_storm_rig_seed():
    """End-to-end: two identical storms on the fast kernel match event for
    event (the property the exhibits' byte-identical regeneration rests on)."""
    from repro.core.experiments import StormRig

    def run():
        rig = StormRig(seed=3, hosts=4, datastores=2)
        outcome = rig.closed_loop_storm(total=12, concurrency=4, linked=True)
        return outcome

    assert run() == run()


def test_condition_on_processed_events_fires_without_dead_callbacks():
    """Satellite regression: Condition must not append callbacks to events
    whose callback list already ran (they would never fire)."""
    sim = Simulator()
    first = sim.event()
    second = sim.event()
    first.succeed("a")
    second.succeed("b")
    sim.run()  # both processed, callback lists cleared
    condition = AllOf(sim, [first, second])
    assert condition.triggered
    assert first.callbacks == []
    assert second.callbacks == []

    def waiter():
        result = yield condition
        return sorted(result.values())

    process = sim.spawn(waiter())
    assert sim.run(until=process) == ["a", "b"]


def test_cancelled_event_resume_raises_eventcancelled():
    """A triggered-then-cancelled event a process was parked on: the process
    stays parked (cancel means never), matching the historical contract."""
    sim = Simulator()
    gate = sim.event("gate")

    def waiter():
        with pytest.raises(EventCancelled):
            yield gate

    process = sim.spawn(waiter())
    gate.succeed("v")
    gate.cancel()
    sim.run()
    assert not process.triggered
