"""Unit tests for resources: FCFS server, priority server, store, bucket."""

import pytest

from repro.sim import PriorityResource, Resource, Simulator, Store
from repro.sim.resources import TokenBucket


def hold(sim, resource, duration, log, tag, priority=0.0):
    request = resource.request(priority=priority)
    yield request
    log.append(("start", tag, sim.now))
    try:
        yield sim.timeout(duration)
    finally:
        resource.release(request)
    log.append(("end", tag, sim.now))


def test_capacity_one_serializes():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []
    sim.spawn(hold(sim, resource, 5.0, log, "a"))
    sim.spawn(hold(sim, resource, 5.0, log, "b"))
    sim.run()
    assert log == [
        ("start", "a", 0.0),
        ("end", "a", 5.0),
        ("start", "b", 5.0),
        ("end", "b", 10.0),
    ]


def test_capacity_two_runs_pair_concurrently():
    sim = Simulator()
    resource = Resource(sim, capacity=2)
    log = []
    for tag in "abc":
        sim.spawn(hold(sim, resource, 4.0, log, tag))
    sim.run()
    starts = {tag: time for kind, tag, time in log if kind == "start"}
    assert starts == {"a": 0.0, "b": 0.0, "c": 4.0}


def test_invalid_capacity_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Resource(sim, capacity=0)


def test_release_unheld_request_is_error():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    holder = resource.request()

    def proc():
        yield holder
        queued = resource.request()
        with pytest.raises(RuntimeError):
            resource.release(queued)
        queued.withdraw()
        resource.release(holder)

    sim.spawn(proc())
    sim.run()
    assert resource.in_use == 0
    assert resource.queue_depth == 0


def test_withdraw_queued_request():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def impatient():
        request = resource.request()
        if not request.triggered:
            request.withdraw()
            log.append("gave-up")
            yield sim.timeout(0.0)
        else:
            yield request
            resource.release(request)

    sim.spawn(hold(sim, resource, 10.0, log, "holder"))
    sim.spawn(impatient())
    sim.run()
    assert "gave-up" in log


def test_wait_times_recorded():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []
    sim.spawn(hold(sim, resource, 3.0, log, "a"))
    sim.spawn(hold(sim, resource, 3.0, log, "b"))
    sim.run()
    assert resource.wait_times == [0.0, 3.0]


def test_resize_grants_waiters():
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    log = []

    def grow():
        yield sim.timeout(1.0)
        resource.resize(2)

    sim.spawn(hold(sim, resource, 10.0, log, "a"))
    sim.spawn(hold(sim, resource, 10.0, log, "b"))
    sim.spawn(grow())
    sim.run()
    starts = {tag: time for kind, tag, time in log if kind == "start"}
    assert starts == {"a": 0.0, "b": 1.0}


def test_priority_resource_grants_lowest_priority_first():
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    log = []

    def submit():
        # Occupy, then queue low-priority before high-priority.
        yield sim.timeout(0.0)

    sim.spawn(hold(sim, resource, 5.0, log, "holder"))
    sim.spawn(hold(sim, resource, 1.0, log, "bulk", priority=10.0))
    sim.spawn(hold(sim, resource, 1.0, log, "interactive", priority=1.0))
    sim.spawn(submit())
    sim.run()
    order = [tag for kind, tag, _ in log if kind == "start"]
    assert order == ["holder", "interactive", "bulk"]


def test_priority_ties_break_fcfs():
    sim = Simulator()
    resource = PriorityResource(sim, capacity=1)
    log = []
    sim.spawn(hold(sim, resource, 2.0, log, "holder"))
    sim.spawn(hold(sim, resource, 1.0, log, "first", priority=5.0))
    sim.spawn(hold(sim, resource, 1.0, log, "second", priority=5.0))
    sim.run()
    order = [tag for kind, tag, _ in log if kind == "start"]
    assert order == ["holder", "first", "second"]


def test_store_fifo_order():
    sim = Simulator()
    store = Store(sim)
    received = []

    def consumer():
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    def producer():
        yield sim.timeout(1.0)
        for item in ("x", "y", "z"):
            store.put(item)

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert received == ["x", "y", "z"]


def test_store_get_blocks_until_put():
    sim = Simulator()
    store = Store(sim)
    times = []

    def consumer():
        yield store.get()
        times.append(sim.now)

    def producer():
        yield sim.timeout(9.0)
        store.put(1)

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert times == [9.0]


def test_store_size_tracks_buffer():
    sim = Simulator()
    store = Store(sim)
    store.put(1)
    store.put(2)
    assert store.size == 2


def test_token_bucket_paces_takers():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, burst=2.0)
    times = []

    def taker():
        for _ in range(4):
            yield from bucket.take(1.0)
            times.append(sim.now)

    sim.spawn(taker())
    sim.run()
    # Burst of 2 immediately, then 1/sec.
    assert times == [0.0, 0.0, 1.0, 2.0]


def test_token_bucket_rejects_oversized_take():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=1.0, burst=2.0)

    def taker():
        with pytest.raises(ValueError):
            yield from bucket.take(5.0)
        yield sim.timeout(0.0)

    sim.spawn(taker())
    sim.run()


def test_token_bucket_validates_parameters():
    sim = Simulator()
    with pytest.raises(ValueError):
        TokenBucket(sim, rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(sim, rate=1.0, burst=0.0)
