"""Property-based tests on DES kernel invariants (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Resource, Simulator
from repro.sim.stats import LatencyRecorder


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_events_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []

    def proc(delay):
        yield sim.timeout(delay)
        fired.append(sim.now)

    for delay in delays:
        sim.spawn(proc(delay))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    durations=st.lists(st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=30),
    capacity=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_resource_never_exceeds_capacity_and_serves_all(durations, capacity):
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    served = []
    max_seen = [0]

    def proc(duration):
        request = resource.request()
        yield request
        max_seen[0] = max(max_seen[0], resource.in_use)
        assert resource.in_use <= capacity
        yield sim.timeout(duration)
        resource.release(request)
        served.append(duration)

    for duration in durations:
        sim.spawn(proc(duration))
    sim.run()
    assert len(served) == len(durations)
    assert max_seen[0] <= capacity
    assert resource.in_use == 0
    assert resource.queue_depth == 0


@given(
    durations=st.lists(st.floats(min_value=0.01, max_value=50.0), min_size=2, max_size=25)
)
@settings(max_examples=40, deadline=None)
def test_single_server_busy_time_equals_sum_of_service(durations):
    """Work conservation: a capacity-1 server finishes at sum(durations)."""
    sim = Simulator()
    resource = Resource(sim, capacity=1)
    finish = [0.0]

    def proc(duration):
        request = resource.request()
        yield request
        yield sim.timeout(duration)
        resource.release(request)
        finish[0] = sim.now

    for duration in durations:
        sim.spawn(proc(duration))
    sim.run()
    assert abs(finish[0] - sum(durations)) < 1e-6 * max(1.0, sum(durations))


@given(values=st.lists(st.floats(min_value=0.0, max_value=1e9), min_size=1, max_size=200))
@settings(max_examples=80, deadline=None)
def test_latency_recorder_percentiles_bounded_and_ordered(values):
    recorder = LatencyRecorder("x")
    for value in values:
        recorder.record(value)
    p50 = recorder.percentile(0.5)
    p95 = recorder.percentile(0.95)
    p99 = recorder.percentile(0.99)
    assert min(values) <= p50 <= p95 <= p99 <= max(values)
    # The mean may drift by an ulp from summation rounding.
    slack = 1e-9 * max(1.0, max(values))
    assert min(values) - slack <= recorder.mean <= max(values) + slack


@given(
    seed=st.integers(min_value=0, max_value=2**32),
    count=st.integers(min_value=1, max_value=20),
)
@settings(max_examples=30, deadline=None)
def test_simulation_is_deterministic_under_seed(seed, count):
    from repro.sim import RandomStreams

    def run_once():
        sim = Simulator()
        rng = RandomStreams(seed).stream("delays")
        log = []

        def proc(index):
            yield sim.timeout(rng.random() * 10)
            log.append((sim.now, index))

        for index in range(count):
            sim.spawn(proc(index))
        sim.run()
        return log

    assert run_once() == run_once()
