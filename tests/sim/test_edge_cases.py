"""Edge-case coverage across the kernel and primitives."""

import pytest

from repro.sim import Event, EventCancelled, Simulator, Store
from repro.sim.resources import TokenBucket


def test_event_value_raises_stored_failure():
    sim = Simulator()
    event = sim.event()
    event.fail(ValueError("stored"))
    with pytest.raises(ValueError, match="stored"):
        _ = event.value


def test_event_repr_shows_state_and_name():
    sim = Simulator()
    event = sim.event("gate")
    assert "gate" in repr(event)
    assert "pending" in repr(event)


def test_cancel_processed_event_rejected():
    sim = Simulator()
    event = sim.event()
    event.succeed()
    sim.run()
    with pytest.raises(RuntimeError, match="already processed"):
        event.cancel()


def test_process_requires_generator():
    sim = Simulator()
    with pytest.raises(TypeError, match="generator"):
        sim.spawn(lambda: None)  # type: ignore[arg-type]


def test_spawned_process_waits_on_already_processed_event():
    sim = Simulator()
    done = sim.event()
    done.succeed("early")
    sim.run()
    assert done.processed

    def late_waiter():
        value = yield done
        return value

    process = sim.spawn(late_waiter())
    assert sim.run(until=process) == "early"


def test_waiting_on_already_failed_event_raises():
    sim = Simulator()
    failed = sim.event()
    failed.fail(IOError("gone"))
    sim.run()

    def late_waiter():
        with pytest.raises(IOError):
            yield failed
        return "handled"

    process = sim.spawn(late_waiter())
    assert sim.run(until=process) == "handled"


def test_store_getter_cancel_is_skipped():
    sim = Simulator()
    store = Store(sim)
    getter = store.get()
    getter.cancel()
    received = []

    def consumer():
        item = yield store.get()
        received.append(item)

    sim.spawn(consumer())
    store.put("x")
    sim.run()
    # The cancelled getter was skipped; the live one got the item.
    assert received == ["x"]


def test_token_bucket_caps_at_burst():
    sim = Simulator()
    bucket = TokenBucket(sim, rate=100.0, burst=3.0)
    times = []

    def taker():
        # Long idle: tokens must cap at burst (3), not accrue unboundedly.
        yield sim.timeout(100.0)
        for _ in range(5):
            yield from bucket.take(1.0)
            times.append(sim.now)

    sim.spawn(taker())
    sim.run()
    immediate = sum(1 for time in times if time == pytest.approx(100.0))
    assert immediate == 3


def test_gauge_series_records_steps():
    from repro.sim import Gauge

    sim = Simulator()
    gauge = Gauge(sim, "g")
    gauge.set(1.0)
    gauge.set(3.0)
    series = gauge.series()
    assert series[0] == (0.0, 0.0)
    assert series[-1] == (0.0, 3.0)


def test_run_until_event_value_propagates_failure():
    sim = Simulator()

    def boom():
        yield sim.timeout(1.0)
        raise KeyError("inside")

    process = sim.spawn(boom())
    with pytest.raises(KeyError):
        sim.run(until=process)


def test_interrupt_cause_defaults_to_none():
    from repro.sim import Interrupt

    caught = []
    sim = Simulator()

    def victim():
        try:
            yield sim.timeout(50.0)
        except Interrupt as interrupt:
            caught.append(interrupt.cause)

    process = sim.spawn(victim())

    def attacker():
        yield sim.timeout(1.0)
        process.interrupt()

    sim.spawn(attacker())
    sim.run()
    assert caught == [None]
