"""Tests for the scale-out sharded control plane."""

import pytest

from repro.controlplane import ShardedControlPlane
from repro.datacenter import Datastore, Host, TemplateLibrary
from repro.datacenter.templates import MEDIUM_LINUX
from repro.operations import CloneVM
from repro.sim import RandomStreams, Simulator


def build_sharded(shard_count, host_count=8, seed=3):
    sim = Simulator()
    plane = ShardedControlPlane(sim, RandomStreams(seed), shard_count=shard_count)
    hosts = []
    templates = {}
    for index in range(host_count):
        host = Host(entity_id=f"host-{index}", name=f"esx{index:02d}")
        shard = plane.adopt_host(host)
        hosts.append(host)
        if shard.name not in templates:
            datastore = shard.inventory.create(
                Datastore, name=f"lun-{shard.name}", capacity_gb=50000.0
            )
            library = TemplateLibrary(shard.inventory)
            templates[shard.name] = (library.publish(MEDIUM_LINUX, datastore), datastore)
        for host_ds in [templates[shard.name][1]]:
            host.mount(host_ds)
    return sim, plane, hosts, templates


def test_shard_count_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        ShardedControlPlane(sim, RandomStreams(1), shard_count=0)


def test_hosts_distributed_round_robin():
    _, plane, hosts, _ = build_sharded(shard_count=2, host_count=8)
    counts = [len(shard.hosts) for shard in plane.shards]
    assert counts == [4, 4]


def test_route_to_owning_shard():
    _, plane, hosts, _ = build_sharded(shard_count=2)
    shard = plane.shard_for_host(hosts[0])
    assert hosts[0] in shard.hosts


def test_unknown_host_routing_fails():
    _, plane, _, _ = build_sharded(shard_count=2)
    stranger = Host(entity_id="host-x", name="stranger")
    with pytest.raises(KeyError):
        plane.shard_for_host(stranger)


def run_storm(shard_count, clones=32):
    sim, plane, hosts, templates = build_sharded(shard_count=shard_count)
    for index in range(clones):
        host = hosts[index % len(hosts)]
        shard = plane.shard_for_host(host)
        template, datastore = templates[shard.name]
        op = CloneVM(template, f"vm-{index}", host, datastore, linked=True)
        plane.submit_on(host, op)
    sim.run()
    return sim, plane


def test_storm_completes_across_shards():
    sim, plane = run_storm(shard_count=2)
    assert plane.completed_tasks() == 32


def test_more_shards_more_throughput():
    """R-F9 shape: sharding the control plane raises provisioning throughput."""
    sim1, plane1 = run_storm(shard_count=1)
    sim4, plane4 = run_storm(shard_count=4)
    assert plane4.throughput() > plane1.throughput()
    assert sim4.now < sim1.now


def test_aggregate_utilization_snapshot():
    sim, plane = run_storm(shard_count=2)
    snapshot = plane.utilization_snapshot()
    assert 0.0 <= snapshot["cpu"] <= 1.0
    assert 0.0 <= snapshot["db"] <= 1.0


def test_throughput_zero_before_time_advances():
    sim = Simulator()
    plane = ShardedControlPlane(sim, RandomStreams(1), shard_count=1)
    assert plane.throughput() == 0.0
