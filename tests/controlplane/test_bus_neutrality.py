"""Bus neutrality: an attached-but-direct bus must not perturb the schedule.

The differential test the message-bus ISSUE demands: run the same seeded
storm with no bus at all and with a :class:`MessageBus` attached in
``direct_calls=True`` compatibility mode, and require the *task
schedules* — every task's submit/start/finish time, state, and attempt
count — to be identical. A direct-mode bus is fully inert (no topics, no
consumers, no sim interaction), so flipping it on must not shift any
workload event; this holds the committed exhibits byte-identical whether
or not the transport layer is present.
"""

import pytest

from repro.core.experiments import StormRig
from repro.faults.injector import FaultInjector, FaultTargets
from repro.faults.schedule import standard_fault_schedule


def schedule_of(rig):
    return [
        (
            task.task_id,
            task.op_type,
            task.submitted_at,
            task.started_at,
            task.finished_at,
            task.state.name,
            task.attempts,
        )
        for task in rig.server.tasks.tasks
    ]


def run_storm(bus: bool, faults: bool = False):
    rig = StormRig(seed=3, hosts=8, datastores=2, bus=bus, direct_calls=True)
    injector = None
    if faults:
        injector = FaultInjector(
            rig.sim,
            FaultTargets.for_server(rig.server),
            standard_fault_schedule(600.0),
            rng=rig.streams.stream("fault-injector"),
        ).start()
    summary = rig.closed_loop_storm(total=48, concurrency=12, linked=True)
    if injector is not None:
        rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))
    return rig, summary


@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulted"])
def test_task_schedule_identical_with_and_without_direct_bus(faults):
    rig_off, summary_off = run_storm(bus=False, faults=faults)
    rig_on, summary_on = run_storm(bus=True, faults=faults)

    assert schedule_of(rig_on) == schedule_of(rig_off)
    assert summary_on == summary_off
    # The comparison is not vacuous: the bus was attached, but stayed
    # fully inert — no topics created, nothing published.
    assert rig_on.bus is not None
    assert rig_on.bus.direct_calls and not rig_on.bus.mediated
    assert rig_on.bus.topic_stats() == {}
    assert rig_off.bus is None


def test_mediated_storm_matches_direct_outcomes():
    """Mediated transport may reshuffle timing, never outcomes.

    Zero-latency publish/deliver hops insert extra sim events, so exact
    schedule equality is not required — but the same storm must complete
    the same clones with no dead letters and all messages accounted.
    """
    rig_direct, summary_direct = run_storm(bus=False)
    rig_bus = StormRig(seed=3, hosts=8, datastores=2, bus=True, direct_calls=False)
    summary_bus = rig_bus.closed_loop_storm(total=48, concurrency=12, linked=True)

    assert summary_bus["completed"] == summary_direct["completed"]
    assert len(rig_bus.server.tasks.dead_letters) == 0
    stats = rig_bus.bus.topic_stats()
    published = sum(s.published for s in stats.values())
    delivered = sum(s.delivered for s in stats.values())
    assert published == delivered > 0
    assert rig_bus.bus.depths() == {name: 0 for name in stats}
