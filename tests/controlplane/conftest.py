"""Shared fixtures for control-plane tests."""

import pytest

from repro.controlplane import ControlPlaneConfig, DEFAULT_COSTS
from repro.controlplane.database import DatabaseModel
from repro.controlplane.server import ManagementServer
from repro.datacenter import Host
from repro.sim import RandomStreams, Simulator


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def streams():
    return RandomStreams(seed=42)


@pytest.fixture
def database(sim, streams):
    return DatabaseModel(
        sim, DEFAULT_COSTS, connections=4, rng=streams.stream("db")
    )


@pytest.fixture
def server(sim, streams):
    return ManagementServer(sim, streams, config=ControlPlaneConfig())


def add_host(server, n=1):
    host = server.inventory.create(Host, name=f"esx{n:02d}")
    server.adopt_host(host)
    return host
