"""Tests for the event log and alarm subsystem."""

import pytest

from repro.controlplane import AlarmManager, AlarmRule, EventLog, ManagementEvent
from repro.controlplane.eventlog import (
    ALERT,
    INFO,
    WARNING,
    datastore_usage_rule,
    host_memory_rule,
)
from repro.datacenter import PowerState, VirtualMachine
from repro.operations import CloneVM

from tests.operations.conftest import SmallCloud


@pytest.fixture
def cloud():
    return SmallCloud(seed=6)


class TestEventLog:
    def test_post_and_query(self, cloud):
        log = EventLog(cloud.sim, cloud.server.database)
        log.post("vm.power_on", "vm-1")
        log.post("vm.crash", "vm-2", severity=ALERT, message="panic")
        assert len(log.events) == 2
        assert log.by_severity(ALERT)[0].entity_id == "vm-2"
        assert log.by_kind("vm.power_on")[0].kind == "vm.power_on"
        assert log.pending == 2

    def test_invalid_severity_rejected(self, cloud):
        with pytest.raises(ValueError):
            ManagementEvent(time=0.0, kind="x", entity_id="e", severity="fatal")

    def test_flusher_drains_to_database(self, cloud):
        log = EventLog(cloud.sim, cloud.server.database, flush_interval_s=5.0)
        for index in range(10):
            log.post("op", f"vm-{index}")
        log.start(until=20.0)
        writes_before = cloud.server.database.metrics.counter("writes").value
        cloud.sim.run(until=20.0)
        cloud.sim.run()
        assert log.pending == 0
        assert log.metrics.counter("flushed").value == 10
        assert cloud.server.database.metrics.counter("writes").value > writes_before

    def test_backlog_drains_in_consecutive_batches(self, cloud):
        log = EventLog(
            cloud.sim, cloud.server.database, flush_interval_s=10.0, max_batch=16
        )
        for index in range(100):
            log.post("op", f"vm-{index}")
        log.start(until=15.0)
        cloud.sim.run(until=15.0)
        cloud.sim.run()
        assert log.pending == 0
        assert log.metrics.counter("flush_batches").value >= 7

    def test_validation(self, cloud):
        with pytest.raises(ValueError):
            EventLog(cloud.sim, cloud.server.database, flush_interval_s=0.0)
        with pytest.raises(ValueError):
            EventLog(cloud.sim, cloud.server.database, max_batch=0)
        log = EventLog(cloud.sim, cloud.server.database)
        log.start(until=1.0)
        with pytest.raises(RuntimeError):
            log.start()


class TestTaskEventIntegration:
    def test_task_completions_emit_events(self, cloud):
        log = cloud.server.enable_event_logging(until=10_000.0)
        cloud.run_op(
            CloneVM(cloud.template, "c1", cloud.hosts[0], cloud.datastores[0], linked=True)
        )
        kinds = [event.kind for event in log.events]
        assert "task.clone_linked" in kinds

    def test_failed_task_emits_warning(self, cloud):
        log = cloud.server.enable_event_logging(until=10_000.0)
        orphan = cloud.server.inventory.create(VirtualMachine, name="orphan")
        from repro.operations import PowerOn

        process = cloud.server.submit(PowerOn(orphan))
        with pytest.raises(Exception):
            cloud.sim.run(until=process)
        assert log.by_severity(WARNING)

    def test_enable_twice_rejected(self, cloud):
        cloud.server.enable_event_logging(until=1.0)
        with pytest.raises(RuntimeError):
            cloud.server.enable_event_logging()

    def test_reenable_after_stop(self, cloud):
        """What-if replays toggle logging around the window of interest."""
        log = cloud.server.enable_event_logging(flush_interval_s=5.0)
        log.post("op", "vm-1")
        log.stop()
        cloud.sim.run()  # flusher drains the backlog and exits
        assert not log.active
        fresh = cloud.server.enable_event_logging(until=100.0)
        assert fresh is not log
        assert cloud.server.tasks.event_log is fresh

    def test_churn_amplifies_event_volume(self, cloud):
        """Cloud churn = insert flood: events scale with tasks."""
        log = cloud.server.enable_event_logging(until=100_000.0)
        for index in range(20):
            cloud.run_op(
                CloneVM(
                    cloud.template,
                    f"c{index}",
                    cloud.hosts[index % 4],
                    cloud.datastores[0],
                    linked=True,
                )
            )
        assert log.metrics.counter("posted").value == 20


class TestAlarms:
    def test_datastore_usage_alarm_triggers_and_clears(self, cloud):
        log = EventLog(cloud.sim, cloud.server.database)
        manager = AlarmManager(
            cloud.server, log, rules=[datastore_usage_rule(0.5)]
        )
        datastore = cloud.datastores[0]
        datastore.allocate(datastore.capacity_gb * 0.6)
        assert manager.evaluate_once() == 1
        assert (f"datastore-usage>50%", datastore.entity_id) in manager.active
        assert log.by_severity(ALERT)
        datastore.reclaim(datastore.capacity_gb * 0.5)
        assert manager.evaluate_once() == 1
        assert not manager.active
        assert any(event.kind.startswith("alarm.cleared") for event in log.events)

    def test_no_retrigger_while_active(self, cloud):
        log = EventLog(cloud.sim, cloud.server.database)
        manager = AlarmManager(cloud.server, log, rules=[datastore_usage_rule(0.5)])
        cloud.datastores[0].allocate(cloud.datastores[0].capacity_gb * 0.6)
        assert manager.evaluate_once() == 1
        assert manager.evaluate_once() == 0
        assert manager.metrics.counter("triggered").value == 1

    def test_host_memory_alarm(self, cloud):
        log = EventLog(cloud.sim, cloud.server.database)
        manager = AlarmManager(cloud.server, log, rules=[host_memory_rule(0.5)])
        host = cloud.hosts[0]
        vm = cloud.server.inventory.create(
            VirtualMachine,
            name="big",
            memory_gb=host.memory_limit_gb * 0.6,
            power_state=PowerState.ON,
        )
        vm.place_on(host)
        assert manager.evaluate_once() == 1
        assert log.by_severity(WARNING)

    def test_periodic_loop(self, cloud):
        log = EventLog(cloud.sim, cloud.server.database)
        manager = AlarmManager(
            cloud.server, log, rules=[datastore_usage_rule(0.5)], check_interval_s=30.0
        )
        manager.start(until=100.0)
        cloud.datastores[0].allocate(cloud.datastores[0].capacity_gb * 0.7)
        cloud.sim.run(until=100.0)
        cloud.sim.run()
        assert manager.metrics.counter("triggered").value == 1

    def test_validation(self, cloud):
        log = EventLog(cloud.sim, cloud.server.database)
        with pytest.raises(ValueError):
            AlarmManager(cloud.server, log, check_interval_s=0.0)
        manager = AlarmManager(cloud.server, log)
        manager.start(until=1.0)
        with pytest.raises(RuntimeError):
            manager.start()

    def test_default_rules_installed(self, cloud):
        log = EventLog(cloud.sim, cloud.server.database)
        manager = AlarmManager(cloud.server, log)
        names = {rule.name for rule in manager.rules}
        assert any("datastore-usage" in name for name in names)
        assert any("host-memory" in name for name in names)
