"""Stateful property test: the RW lock never violates its exclusion rules
under arbitrary interleavings of acquire/release requests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.controlplane.locks import READ, RWLock, WRITE
from repro.sim import Simulator


@given(
    script=st.lists(
        st.tuples(
            st.sampled_from([READ, WRITE]),
            st.floats(min_value=0.0, max_value=10.0),   # arrival offset
            st.floats(min_value=0.01, max_value=5.0),   # hold duration
        ),
        min_size=1,
        max_size=25,
    )
)
@settings(max_examples=80, deadline=None)
def test_rwlock_exclusion_invariants(script):
    sim = Simulator()
    lock = RWLock(sim, name="t")
    violations = []
    state = {"readers": 0, "writer": False}
    grants_seen = [0]

    def holder(mode, offset, duration):
        yield sim.timeout(offset)
        grant = yield lock.acquire(mode)
        grants_seen[0] += 1
        if mode == WRITE:
            if state["readers"] or state["writer"]:
                violations.append(("write-while-busy", dict(state)))
            state["writer"] = True
        else:
            if state["writer"]:
                violations.append(("read-while-written", dict(state)))
            state["readers"] += 1
        yield sim.timeout(duration)
        if mode == WRITE:
            state["writer"] = False
        else:
            state["readers"] -= 1
        lock.release(grant)

    for mode, offset, duration in script:
        sim.spawn(holder(mode, offset, duration))
    sim.run()
    assert violations == []
    assert grants_seen[0] == len(script)   # nobody starves
    assert lock.idle
    assert state == {"readers": 0, "writer": False}


@given(
    writers=st.integers(min_value=1, max_value=5),
    readers=st.integers(min_value=1, max_value=10),
)
@settings(max_examples=40, deadline=None)
def test_rwlock_all_waiters_eventually_served(writers, readers):
    sim = Simulator()
    lock = RWLock(sim)
    served = []

    def client(mode, tag):
        grant = yield lock.acquire(mode)
        yield sim.timeout(1.0)
        lock.release(grant)
        served.append(tag)

    for index in range(writers):
        sim.spawn(client(WRITE, f"w{index}"))
    for index in range(readers):
        sim.spawn(client(READ, f"r{index}"))
    sim.run()
    assert len(served) == writers + readers
