"""Unit tests for the control-plane message bus.

Each test drives a bare :class:`MessageBus` (no management server) with
hand-rolled publisher/consumer processes, pinning the delivery semantics
docs/bus.md promises: bounded queues with three overflow policies,
publisher backpressure, at-least-once redelivery with a bounded budget,
consumer-side idempotency-key dedup, dead-letter-once accounting, and
partition stall/heal.
"""

import random

import pytest

from repro.controlplane.bus import (
    MessageBus,
    NULL_BUS,
    OVERFLOW_BLOCK,
    OVERFLOW_DEAD_LETTER,
    OVERFLOW_SHED_OLDEST,
)
from repro.faults import MessageLost, TransientError
from repro.sim.kernel import Simulator


def make_bus(**kwargs):
    sim = Simulator()
    kwargs.setdefault("rng", random.Random(7))
    kwargs.setdefault("direct_calls", False)
    bus = MessageBus(sim, **kwargs)
    return sim, bus


def consume(bus, topic, results, count):
    """A consumer that accepts ``count`` admitted messages then exits."""

    def loop():
        taken = 0
        while taken < count:
            message = yield topic.get()
            if not bus.accept(message):
                continue
            results.append(message.payload)
            taken += 1

    return bus.sim.spawn(loop(), name=f"consumer:{topic.name}")


def publish(bus, topic_name, payload, key, reply=None):
    return bus.sim.spawn(
        bus.publish(topic_name, payload, key=key, reply=reply),
        name=f"publisher:{key}",
    )


def test_publish_deliver_roundtrip():
    sim, bus = make_bus()
    topic = bus.subscribe("t")
    results = []
    consume(bus, topic, results, 2)
    publish(bus, "t", "a", key="k1")
    publish(bus, "t", "b", key="k2")
    sim.run()
    assert results == ["a", "b"]
    stats = topic.stats
    assert stats.published == 2 and stats.delivered == 2
    assert stats.redelivered == stats.deduped == stats.dead_lettered == 0
    assert topic.depth == 0


def test_single_subscriber_enforced():
    _sim, bus = make_bus()
    bus.subscribe("t")
    with pytest.raises(RuntimeError, match="already has a subscriber"):
        bus.subscribe("t")


def test_duplicate_key_deduped_at_consumer():
    sim, bus = make_bus()
    topic = bus.subscribe("t")
    results = []

    def loop():
        while True:
            message = yield topic.get()
            if not bus.accept(message):
                continue
            results.append(message.payload)

    consumer = sim.spawn(loop(), name="consumer")
    publish(bus, "t", "first", key="same")
    publish(bus, "t", "second", key="same")
    sim.run()
    assert results == ["first"]
    assert topic.stats.deduped == 1
    consumer.interrupt()
    sim.run()


def test_block_overflow_backpressures_publisher():
    sim, bus = make_bus()
    topic = bus.subscribe("t", capacity=1, overflow=OVERFLOW_BLOCK)
    order = []

    def tracked(key):
        yield from bus.publish("t", key, key=key)
        order.append(key)

    sim.spawn(tracked("k1"), name="p1")
    second = sim.spawn(tracked("k2"), name="p2")
    sim.run(until=sim.timeout(0.0))
    # k1 filled the queue; k2 is parked on a put request, not enqueued.
    assert order == ["k1"]
    assert not second.processed
    assert topic.depth == 1
    results = []
    consume(bus, topic, results, 2)
    sim.run()
    assert order == ["k1", "k2"]
    assert results == ["k1", "k2"]
    assert topic.stats.shed == 0


def test_shed_oldest_evicts_head_to_dead_letters():
    sim, bus = make_bus()
    topic = bus.subscribe("t", capacity=1, overflow=OVERFLOW_SHED_OLDEST)
    outcomes = {}

    def tracked(key):
        reply = sim.event(name=f"reply:{key}")
        yield from bus.publish("t", key, key=key, reply=reply)
        try:
            yield reply
            outcomes[key] = "ok"
        except MessageLost:
            outcomes[key] = "lost"

    sim.spawn(tracked("old"), name="p1")
    sim.spawn(tracked("new"), name="p2")
    results = []

    def consumer():
        message = yield topic.get()
        assert bus.accept(message)
        results.append(message.payload)
        message.reply.succeed("done")

    sim.spawn(consumer(), name="consumer")
    sim.run()
    # The head ("old") was evicted to make room; the newcomer delivered.
    assert results == ["new"]
    assert outcomes == {"old": "lost", "new": "ok"}
    assert topic.stats.shed == 1
    assert topic.stats.dead_lettered == 1


def test_dead_letter_overflow_rejects_incoming():
    sim, bus = make_bus()
    topic = bus.subscribe("t", capacity=1, overflow=OVERFLOW_DEAD_LETTER)
    outcomes = {}

    def tracked(key):
        reply = sim.event(name=f"reply:{key}")
        yield from bus.publish("t", key, key=key, reply=reply)
        try:
            yield reply
            outcomes[key] = "ok"
        except MessageLost:
            outcomes[key] = "lost"

    sim.spawn(tracked("kept"), name="p1")
    sim.spawn(tracked("rejected"), name="p2")
    results = []

    def consumer():
        yield sim.timeout(1.0)  # let both publishes race the full queue
        message = yield topic.get()
        assert bus.accept(message)
        results.append(message.payload)
        message.reply.succeed("done")

    sim.spawn(consumer(), name="consumer")
    sim.run()
    assert results == ["kept"]
    assert outcomes == {"kept": "ok", "rejected": "lost"}
    assert topic.stats.dead_lettered == 1


def test_drop_fault_triggers_redelivery():
    sim, bus = make_bus(redelivery_timeout_s=5.0)
    topic = bus.subscribe("t")
    results = []
    consume(bus, topic, results, 1)
    bus.faults.set_drop("w", 1.0)
    publish(bus, "t", "payload", key="k")
    sim.run(until=sim.timeout(1.0))
    assert results == []  # lost in transit
    assert topic.stats.dropped == 1
    bus.faults.disarm("w")
    sim.run()
    # The redelivery timer re-sent the copy after the window healed.
    assert results == ["payload"]
    assert topic.stats.redelivered == 1
    assert topic.stats.delivered == 1


def test_redelivery_budget_exhaustion_dead_letters_once():
    sim, bus = make_bus(redelivery_timeout_s=2.0, max_redeliveries=2)
    bus.subscribe("t")
    bus.faults.set_drop("w", 1.0)  # never heals: every copy is lost
    outcomes = []

    def tracked():
        reply = sim.event(name="reply:k")
        yield from bus.publish("t", "p", key="k", reply=reply)
        try:
            yield reply
        except MessageLost as error:
            outcomes.append(str(error))

    sim.spawn(tracked(), name="p")
    sim.run()
    assert len(outcomes) == 1
    assert "redelivery budget exhausted" in outcomes[0]
    stats = bus.topic_stats()["t"]
    assert stats.dead_lettered == 1
    assert stats.redelivered == bus.max_redeliveries
    assert stats.delivered == 0


def test_partition_stalls_then_heals():
    sim, bus = make_bus(redelivery_timeout_s=1000.0)
    topic = bus.subscribe("t")
    results = []
    consume(bus, topic, results, 1)
    bus.faults.set_partition("w", topics=["t"])
    publish(bus, "t", "p", key="k")
    sim.run(until=sim.timeout(10.0))
    # Queued but parked: the consumer is waiting, the message is not lost.
    assert results == []
    assert topic.depth == 1
    bus.faults.disarm("w")  # heal drains the backlog immediately
    sim.run()
    assert results == ["p"]
    assert topic.depth == 0


def test_partition_scope_only_hits_named_topics():
    _sim, bus = make_bus()
    bus.faults.set_partition("w", topics=["a"])
    assert bus.faults.partitioned("a")
    assert not bus.faults.partitioned("b")
    bus.faults.disarm("w")
    assert not bus.faults.armed


def test_overlapping_fault_windows_compose():
    _sim, bus = make_bus()
    bus.faults.set_drop("w1", 0.5)
    bus.faults.set_drop("w2", 0.5, topics=["t"])
    # Independent events: 1 - 0.5 * 0.5.
    assert bus.faults.drop_rate("t") == pytest.approx(0.75)
    assert bus.faults.drop_rate("other") == pytest.approx(0.5)
    bus.faults.set_delay("w1", 2.0)
    bus.faults.set_delay("w2", 5.0)
    assert bus.faults.delay_s("t") == 5.0  # delays take the max
    bus.faults.disarm("w2")
    assert bus.faults.drop_rate("t") == pytest.approx(0.5)
    bus.faults.disarm("w1")
    assert not bus.faults.armed


def test_late_kill_never_fails_completed_work():
    """A duplicate dead-lettered after its key succeeded is a dedup only."""
    sim, bus = make_bus()
    topic = bus.subscribe("t", capacity=1, overflow=OVERFLOW_SHED_OLDEST)
    results = []
    consume(bus, topic, results, 1)
    reply = sim.event(name="reply:k")
    publish(bus, "t", "p", key="k", reply=reply)
    sim.run()
    assert results == ["p"]  # key "k" is done
    # A late copy of the same key arrives and is evicted by a newcomer.
    publish(bus, "t", "p-again", key="k")
    publish(bus, "t", "q", key="k2")
    sim.run(until=sim.timeout(0.0))
    assert not reply.triggered or reply.ok  # the done key's reply never failed
    assert topic.stats.deduped >= 1
    assert bus.topic_stats()["t"].dead_lettered == 0


def test_message_lost_is_transient():
    assert issubclass(MessageLost, TransientError)


def test_null_bus_is_inert():
    assert NULL_BUS.direct_calls and not NULL_BUS.mediated
    assert NULL_BUS.topic_stats() == {}
    assert NULL_BUS.depths() == {}


def test_direct_mode_bus_reports_unmediated():
    sim = Simulator()
    bus = MessageBus(sim)  # default direct_calls=True
    assert bus.direct_calls and not bus.mediated
    assert bus.topic_stats() == {}


# -- shared subscriptions and forwarding (federation primitives) ----------


def test_shared_topic_fans_work_across_consumers():
    sim, bus = make_bus()
    topic = bus.subscribe_shared("pool")
    left, right = [], []
    consume(bus, topic, left, 2)
    consume(bus, topic, right, 2)
    for i in range(4):
        publish(bus, "pool", f"p{i}", key=f"k{i}")
    sim.run()
    # Every message delivered exactly once, split across the two pullers.
    assert sorted(left + right) == ["p0", "p1", "p2", "p3"]
    assert left and right


def test_shared_topic_rejects_exclusive_subscribe():
    _, bus = make_bus()
    pool = bus.subscribe_shared("pool")
    with pytest.raises(RuntimeError):
        bus.subscribe("pool")
    # Joining the pool again is fine — that is the point of shared.
    assert bus.subscribe_shared("pool") is pool


def test_exclusive_topic_rejects_shared_subscribe():
    _, bus = make_bus()
    bus.subscribe("t")
    with pytest.raises(RuntimeError):
        bus.subscribe_shared("t")


def test_forward_reroutes_without_consuming_key():
    sim, bus = make_bus()
    source = bus.subscribe("src")
    sink = bus.subscribe("dst")
    results = []
    consume(bus, sink, results, 1)

    def reroute():
        message = yield source.get()
        bus.forward(message, "dst")

    sim.spawn(reroute(), name="reroute")
    reply = sim.event(name="reply:fwd")
    publish(bus, "src", "payload", key="fwd-1", reply=reply)
    sim.run()
    assert results == ["payload"]
    assert bus.topic_stats()["src"].forwarded == 1
    # The idempotency key survived the hop: the forwarded copy was the
    # one accepted, and a later duplicate of the same key is deduped.
    publish(bus, "dst", "payload", key="fwd-1")
    sim.run(until=sim.timeout(0.0))
    sim.run()
    assert bus.topic_stats()["dst"].deduped >= 1


def test_forward_settles_reply_from_executing_consumer():
    sim, bus = make_bus()
    source = bus.subscribe("src")
    sink = bus.subscribe("dst")

    def reroute():
        message = yield source.get()
        bus.forward(message, "dst")

    def execute():
        message = yield sink.get()
        assert bus.accept(message)

        def work():
            yield sim.timeout(1.0)
            return "done"

        bus.bridge(sim.spawn(work(), name="work"), message)

    sim.spawn(reroute(), name="reroute")
    sim.spawn(execute(), name="execute")
    reply = sim.event(name="reply:fwd")
    publish(bus, "src", "payload", key="fwd-2", reply=reply)
    sim.run()
    assert reply.triggered and reply.value == "done"
