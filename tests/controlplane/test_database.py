"""Unit tests for the database model."""

import pytest

from repro.controlplane import DEFAULT_COSTS
from repro.controlplane.database import DatabaseModel
from repro.sim import RandomStreams, Simulator


def run_process(sim, generator):
    box = {}

    def wrapper():
        box["value"] = yield from generator
        return box["value"]

    process = sim.spawn(wrapper())
    sim.run(until=process)
    return box["value"]


def make_db(sim, connections=4, batching=False, seed=1):
    return DatabaseModel(
        sim,
        DEFAULT_COSTS,
        connections=connections,
        rng=RandomStreams(seed).stream("db"),
        batching=batching,
    )


def test_write_takes_positive_time():
    sim = Simulator()
    database = make_db(sim)
    elapsed = run_process(sim, database.write(rows=1))
    assert elapsed > 0
    assert sim.now == elapsed


def test_write_cost_scales_with_rows():
    sim = Simulator()
    database = make_db(sim)
    few = run_process(sim, database.write(rows=1))
    many = run_process(sim, database.write(rows=50))
    assert many > few * 10


def test_batching_reduces_write_cost():
    def total_time(batching):
        sim = Simulator()
        database = make_db(sim, batching=batching, seed=7)
        for _ in range(20):
            run_process(sim, database.write(rows=4))
        return sim.now

    assert total_time(True) < total_time(False) / 2


def test_reads_cheaper_than_writes():
    sim = Simulator()
    database = make_db(sim, seed=3)
    reads = sum(run_process(sim, database.read()) for _ in range(30))
    writes = sum(run_process(sim, database.write()) for _ in range(30))
    assert reads < writes


def test_connection_pool_limits_concurrency():
    sim = Simulator()
    database = make_db(sim, connections=1)
    finish = []

    def writer():
        yield from database.write(rows=10)
        finish.append(sim.now)

    sim.spawn(writer())
    sim.spawn(writer())
    sim.run()
    # Serialized on the single connection: second ends strictly later.
    assert finish[1] > finish[0]


def test_rows_must_be_positive():
    sim = Simulator()
    database = make_db(sim)
    with pytest.raises(ValueError):
        run_process(sim, database.write(rows=0))
    with pytest.raises(ValueError):
        run_process(sim, database.read(rows=0))


def test_slowdown_injection():
    def one_write(slow):
        sim = Simulator()
        database = make_db(sim, seed=5)
        if slow:
            database.set_slowdown(10.0)
        return run_process(sim, database.write())

    assert one_write(True) == pytest.approx(one_write(False) * 10.0)


def test_slowdown_must_be_at_least_one():
    sim = Simulator()
    database = make_db(sim)
    with pytest.raises(ValueError):
        database.set_slowdown(0.5)


def test_utilization_bounded_and_positive_under_load():
    sim = Simulator()
    database = make_db(sim, connections=2)

    def writer():
        for _ in range(50):
            yield from database.write()

    sim.spawn(writer())
    sim.spawn(writer())
    sim.run()
    utilization = database.utilization()
    assert 0.0 < utilization <= 1.0


def test_metrics_counters_track_rows():
    sim = Simulator()
    database = make_db(sim)
    run_process(sim, database.write(rows=3))
    run_process(sim, database.read(rows=2))
    assert database.metrics.counter("writes").value == 3
    assert database.metrics.counter("reads").value == 2
