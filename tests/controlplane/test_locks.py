"""Unit tests for the lock manager."""

import pytest

from repro.controlplane import LockManager
from repro.sim import Simulator


def test_granularity_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        LockManager(sim, granularity="weird")


def test_fine_locks_on_disjoint_entities_do_not_block():
    sim = Simulator()
    locks = LockManager(sim, granularity="fine")
    starts = {}

    def proc(tag, ids):
        grants = yield from locks.acquire(ids)
        starts[tag] = sim.now
        yield sim.timeout(5.0)
        locks.release(grants)

    sim.spawn(proc("a", ["vm-1"]))
    sim.spawn(proc("b", ["vm-2"]))
    sim.run()
    assert starts == {"a": 0.0, "b": 0.0}


def test_fine_locks_on_same_entity_serialize():
    sim = Simulator()
    locks = LockManager(sim, granularity="fine")
    starts = {}

    def proc(tag):
        grants = yield from locks.acquire(["vm-1"])
        starts[tag] = sim.now
        yield sim.timeout(5.0)
        locks.release(grants)

    sim.spawn(proc("a"))
    sim.spawn(proc("b"))
    sim.run()
    assert starts["a"] == 0.0
    assert starts["b"] == 5.0


def test_coarse_granularity_serializes_everything():
    sim = Simulator()
    locks = LockManager(sim, granularity="coarse")
    starts = {}

    def proc(tag, ids):
        grants = yield from locks.acquire(ids)
        starts[tag] = sim.now
        yield sim.timeout(5.0)
        locks.release(grants)

    sim.spawn(proc("a", ["vm-1"]))
    sim.spawn(proc("b", ["vm-2"]))
    sim.run()
    assert sorted(starts.values()) == [0.0, 5.0]


def test_overlapping_sets_do_not_deadlock():
    sim = Simulator()
    locks = LockManager(sim, granularity="fine")
    finished = []

    def proc(tag, ids):
        grants = yield from locks.acquire(ids)
        yield sim.timeout(1.0)
        locks.release(grants)
        finished.append(tag)

    # Classic deadlock shape if acquisition were unordered.
    sim.spawn(proc("a", ["vm-1", "vm-2"]))
    sim.spawn(proc("b", ["vm-2", "vm-1"]))
    sim.run()
    assert sorted(finished) == ["a", "b"]


def test_duplicate_ids_locked_once():
    sim = Simulator()
    locks = LockManager(sim, granularity="fine")
    done = []

    def proc():
        grants = yield from locks.acquire(["vm-1", "vm-1"])
        assert len(grants) == 1
        locks.release(grants)
        done.append(True)
        yield sim.timeout(0.0)

    sim.spawn(proc())
    sim.run()
    assert done == [True]


def test_contention_metric_records_waits():
    sim = Simulator()
    locks = LockManager(sim, granularity="fine")

    def proc():
        grants = yield from locks.acquire(["vm-1"])
        yield sim.timeout(4.0)
        locks.release(grants)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    # Two acquisitions: waits 0 and 4 → mean 2.
    assert locks.contention() == pytest.approx(2.0)


def test_lock_scope_acquire_release_pair():
    sim = Simulator()
    locks = LockManager(sim, granularity="fine")
    order = []

    def proc(tag):
        scope = locks.holding(["vm-9"])
        grants = yield from scope.acquire()
        order.append(tag)
        try:
            yield sim.timeout(1.0)
        finally:
            scope.release(grants)

    sim.spawn(proc("first"))
    sim.spawn(proc("second"))
    sim.run()
    assert order == ["first", "second"]


class TestReaderWriter:
    def test_concurrent_readers_admitted_together(self):
        from repro.sim import Simulator
        from repro.controlplane import LockManager

        sim = Simulator()
        locks = LockManager(sim, granularity="fine")
        starts = {}

        def reader(tag):
            grants = yield from locks.acquire([], read_ids=["template-1"])
            starts[tag] = sim.now
            yield sim.timeout(5.0)
            locks.release(grants)

        for tag in ("a", "b", "c"):
            sim.spawn(reader(tag))
        sim.run()
        assert set(starts.values()) == {0.0}

    def test_writer_excludes_readers(self):
        from repro.sim import Simulator
        from repro.controlplane import LockManager

        sim = Simulator()
        locks = LockManager(sim, granularity="fine")
        log = []

        def writer():
            grants = yield from locks.acquire(["template-1"])
            log.append(("w-start", sim.now))
            yield sim.timeout(5.0)
            locks.release(grants)

        def reader():
            yield sim.timeout(1.0)
            grants = yield from locks.acquire([], read_ids=["template-1"])
            log.append(("r-start", sim.now))
            locks.release(grants)

        sim.spawn(writer())
        sim.spawn(reader())
        sim.run()
        assert ("w-start", 0.0) in log
        assert ("r-start", 5.0) in log

    def test_writer_not_starved_by_reader_stream(self):
        from repro.sim import Simulator
        from repro.controlplane import LockManager

        sim = Simulator()
        locks = LockManager(sim, granularity="fine")
        write_time = []

        def reader(delay):
            yield sim.timeout(delay)
            grants = yield from locks.acquire([], read_ids=["t"])
            yield sim.timeout(3.0)
            locks.release(grants)

        def writer():
            yield sim.timeout(1.0)
            grants = yield from locks.acquire(["t"])
            write_time.append(sim.now)
            locks.release(grants)

        # Readers arrive continuously; fair FIFO must let the writer in
        # after the readers that arrived before it drain.
        for delay in (0.0, 0.5, 2.0, 2.5, 3.0):
            sim.spawn(reader(delay))
        sim.spawn(writer())
        sim.run()
        assert write_time[0] == 3.5  # after the two pre-writer readers

    def test_same_id_read_and_write_locks_as_write(self):
        from repro.sim import Simulator
        from repro.controlplane import LockManager
        from repro.controlplane.locks import WRITE

        sim = Simulator()
        locks = LockManager(sim, granularity="fine")
        modes = []

        def proc():
            grants = yield from locks.acquire(["x"], read_ids=["x"])
            modes.extend(grant.mode for grant in grants)
            locks.release(grants)
            yield sim.timeout(0.0)

        sim.spawn(proc())
        sim.run()
        assert modes == [WRITE]

    def test_release_unheld_raises(self):
        from repro.sim import Simulator
        from repro.controlplane.locks import RWGrant, RWLock, READ, WRITE

        import pytest

        sim = Simulator()
        lock = RWLock(sim)
        with pytest.raises(RuntimeError):
            lock.release(RWGrant(lock, WRITE))
        with pytest.raises(RuntimeError):
            lock.release(RWGrant(lock, READ))

    def test_invalid_mode_rejected(self):
        from repro.sim import Simulator
        from repro.controlplane.locks import RWLock

        import pytest

        sim = Simulator()
        with pytest.raises(ValueError):
            RWLock(sim).acquire("exclusive-ish")
