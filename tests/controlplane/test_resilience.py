"""Unit tests for retry policies, budgets, breakers, and dead letters."""

import random

import pytest

from repro.controlplane import TaskState
from repro.controlplane.resilience import (
    BreakerPolicy,
    BreakerState,
    CircuitBreaker,
    NO_RETRY,
    RetryBudget,
    RetryPolicy,
    TaskDeadlineExceeded,
)
from repro.controlplane.task_manager import TaskManager
from repro.faults import InjectedFault, TransientError


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="backoff_multiplier"):
            RetryPolicy(backoff_multiplier=0.5)
        with pytest.raises(ValueError, match="max_backoff_s"):
            RetryPolicy(base_backoff_s=10.0, max_backoff_s=5.0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_backoff_deterministic_without_jitter(self):
        policy = RetryPolicy(base_backoff_s=1.0, backoff_multiplier=2.0,
                             max_backoff_s=5.0, jitter=0.0)
        rng = random.Random(0)
        assert policy.backoff_s(1, rng) == 1.0
        assert policy.backoff_s(2, rng) == 2.0
        assert policy.backoff_s(3, rng) == 4.0
        assert policy.backoff_s(4, rng) == 5.0  # capped
        with pytest.raises(ValueError, match="attempt"):
            policy.backoff_s(0, rng)

    def test_backoff_jitter_stays_in_band(self):
        policy = RetryPolicy(base_backoff_s=8.0, jitter=0.5)
        rng = random.Random(1)
        for _ in range(100):
            delay = policy.backoff_s(1, rng)
            assert 4.0 <= delay <= 8.0

    def test_retryable_filters_by_type(self):
        policy = RetryPolicy()
        assert policy.retryable(InjectedFault("x"))
        assert not policy.retryable(RuntimeError("x"))
        assert not policy.retryable(TaskDeadlineExceeded("x"))

    def test_no_retry_is_single_attempt(self):
        assert NO_RETRY.max_attempts == 1


class TestRetryBudget:
    def test_deposits_capped_and_withdrawals_whole(self):
        budget = RetryBudget(ratio=0.5, initial=1.0, cap=2.0)
        for _ in range(10):
            budget.deposit()
        assert budget.tokens == 2.0
        assert budget.withdraw()
        assert budget.withdraw()
        assert not budget.withdraw()
        assert budget.denied == 1

    def test_dry_budget_refills_from_first_attempts(self):
        budget = RetryBudget(ratio=0.5, initial=0.0, cap=10.0)
        assert not budget.withdraw()
        budget.deposit()
        budget.deposit()
        assert budget.withdraw()

    def test_validation(self):
        with pytest.raises(ValueError, match="ratio"):
            RetryBudget(ratio=-0.1)
        with pytest.raises(ValueError, match="cap"):
            RetryBudget(initial=10.0, cap=5.0)


class TestCircuitBreaker:
    def make(self, sim, threshold=3, cooldown=30.0, probes=1):
        return CircuitBreaker(
            sim,
            BreakerPolicy(
                failure_threshold=threshold,
                cooldown_s=cooldown,
                half_open_probes=probes,
            ),
            name="esx00",
        )

    def test_trips_after_consecutive_failures_only(self, sim):
        breaker = self.make(sim, threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()  # resets the streak
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 1

    def test_open_fast_fails_until_cooldown(self, sim):
        breaker = self.make(sim, cooldown=30.0)
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.fast_fails == 1
        sim.run(until=31.0)
        assert breaker.allow()  # half-open probe admitted
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_probe_success_closes(self, sim):
        breaker = self.make(sim)
        for _ in range(3):
            breaker.record_failure()
        sim.run(until=31.0)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow()

    def test_half_open_probe_failure_retrips(self, sim):
        breaker = self.make(sim)
        for _ in range(3):
            breaker.record_failure()
        sim.run(until=31.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state is BreakerState.OPEN
        assert breaker.opens == 2
        assert not breaker.allow()

    def test_half_open_caps_probes(self, sim):
        breaker = self.make(sim, probes=1)
        for _ in range(3):
            breaker.record_failure()
        sim.run(until=31.0)
        assert breaker.allow()
        assert not breaker.allow()  # probe slot already taken
        assert breaker.fast_fails == 1

    def test_engaged_tracks_every_state(self, sim):
        breaker = self.make(sim, cooldown=30.0)
        assert not breaker.engaged  # CLOSED
        for _ in range(3):
            breaker.record_failure()
        assert breaker.engaged  # OPEN, inside cooldown
        sim.run(until=31.0)
        # Cooldown elapsed: a probe deserves routing again.
        assert not breaker.engaged
        assert breaker.allow()  # takes the only probe slot
        assert breaker.engaged  # HALF_OPEN, probes exhausted
        breaker.record_success()
        assert not breaker.engaged

    def test_engaged_does_not_consume_probes(self, sim):
        breaker = self.make(sim)
        for _ in range(3):
            breaker.record_failure()
        sim.run(until=31.0)
        for _ in range(5):
            assert not breaker.engaged
        assert breaker.state is BreakerState.OPEN  # reads shift no state
        assert breaker.allow()

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            BreakerPolicy(failure_threshold=0)
        with pytest.raises(ValueError, match="half_open_probes"):
            BreakerPolicy(half_open_probes=0)


class TestDeadLetters:
    def make_tm(self, sim, database, **kwargs):
        return TaskManager(sim, database, max_inflight=4, **kwargs)

    def run_one(self, sim, manager, body, op_type="op"):
        def proc():
            try:
                yield from manager.run_task(op_type, body)
            except Exception as error:  # noqa: BLE001
                return error
            return None

        process = sim.spawn(proc())
        return sim.run(until=process)

    def test_exhausted_retryable_failure_is_dead_lettered(self, sim, database):
        manager = self.make_tm(
            sim, database,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.1),
        )

        def body(task):
            yield sim.timeout(0.1)
            raise InjectedFault("flaky forever")

        error = self.run_one(sim, manager, body, op_type="clone")
        assert isinstance(error, InjectedFault)
        (task,) = manager.tasks
        assert task.state == TaskState.ERROR
        assert task.attempts == 3
        (letter,) = manager.dead_letters
        assert letter.task_id == task.task_id
        assert letter.op_type == "clone"
        assert letter.attempts == 3
        assert "flaky forever" in letter.error
        assert manager.metrics.counter("retries").value == 2

    def test_retry_masks_transient_failure(self, sim, database):
        manager = self.make_tm(
            sim, database,
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.1),
        )
        calls = []

        def body(task):
            calls.append(sim.now)
            yield sim.timeout(0.1)
            if len(calls) == 1:
                raise InjectedFault("only once")

        assert self.run_one(sim, manager, body) is None
        (task,) = manager.tasks
        assert task.state == TaskState.SUCCESS
        assert task.attempts == 2
        assert manager.dead_letters == []

    def test_non_retryable_error_is_not_dead_lettered(self, sim, database):
        manager = self.make_tm(
            sim, database, retry_policy=RetryPolicy(max_attempts=3)
        )

        def body(task):
            yield sim.timeout(0.1)
            raise RuntimeError("business failure")

        error = self.run_one(sim, manager, body)
        assert isinstance(error, RuntimeError)
        assert manager.dead_letters == []
        assert manager.metrics.counter("retries").value == 0

    def test_no_policy_means_no_promise_no_dead_letter(self, sim, database):
        manager = self.make_tm(sim, database)

        def body(task):
            yield sim.timeout(0.1)
            raise InjectedFault("transient")

        error = self.run_one(sim, manager, body)
        assert isinstance(error, InjectedFault)
        assert manager.dead_letters == []

    def test_dry_budget_denies_retry(self, sim, database):
        manager = self.make_tm(
            sim, database,
            retry_policy=RetryPolicy(max_attempts=5, base_backoff_s=0.1),
            retry_budget=RetryBudget(ratio=0.0, initial=1.0),
        )

        def body(task):
            yield sim.timeout(0.1)
            raise InjectedFault("down")

        self.run_one(sim, manager, body)
        (task,) = manager.tasks
        # One retry funded by the initial token, then the budget runs dry.
        assert task.attempts == 2
        assert manager.metrics.counter("retry_budget_denied").value == 1
        assert len(manager.dead_letters) == 1


class TestDeadlines:
    def test_queued_past_deadline_is_withdrawn(self, sim, database):
        manager = TaskManager(
            sim, database, max_inflight=1, task_deadline_s=5.0
        )

        def slow(task):
            yield sim.timeout(60.0)

        def fast(task):
            yield sim.timeout(0.1)

        outcomes = []

        def proc(body):
            try:
                yield from manager.run_task("op", body)
            except Exception as error:  # noqa: BLE001
                outcomes.append(error)
            else:
                outcomes.append(None)

        sim.spawn(proc(slow))
        sim.run(until=1.0)  # slot-holder is RUNNING before fast submits
        sim.spawn(proc(fast))
        sim.run()
        # Completion order: the queued task blows its 5s deadline long
        # before the slot-holder finishes its 60s body.
        assert isinstance(outcomes[0], TaskDeadlineExceeded)
        assert outcomes[1] is None
        assert manager.metrics.counter("deadline_exceeded").value == 1
        stuck = [t for t in manager.tasks if t.state == TaskState.ERROR]
        assert len(stuck) == 1
        assert manager.unaccounted() == []
        # TaskDeadlineExceeded is not transient: no dead letter by default.
        assert manager.dead_letters == []

    def test_retry_that_cannot_beat_deadline_fails_now(self, sim, database):
        manager = TaskManager(
            sim, database, max_inflight=4, task_deadline_s=10.0,
            retry_policy=RetryPolicy(
                max_attempts=5, base_backoff_s=30.0, jitter=0.0
            ),
        )

        def body(task):
            yield sim.timeout(0.1)
            raise InjectedFault("transient")

        def proc():
            try:
                yield from manager.run_task("op", body)
            except Exception as error:  # noqa: BLE001
                return error
            return None

        process = sim.spawn(proc())
        error = sim.run(until=process)
        assert isinstance(error, InjectedFault)
        (task,) = manager.tasks
        assert task.attempts == 1  # the 30s backoff would blow the deadline
        assert manager.metrics.counter("deadline_exceeded").value == 1
        assert len(manager.dead_letters) == 1
        assert sim.now < 10.0
