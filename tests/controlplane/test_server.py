"""Integration tests of the management server under operation load."""

import pytest

from repro.controlplane import ControlPlaneConfig
from repro.operations import CloneVM

from tests.operations.conftest import SmallCloud


def storm(cloud, count, linked, power_on=False):
    processes = []
    for index in range(count):
        host = cloud.hosts[index % len(cloud.hosts)]
        ds = cloud.datastores[index % len(cloud.datastores)]
        op = CloneVM(
            cloud.template, f"vm-{index}", host, ds, linked=linked, power_on_after=power_on
        )
        processes.append(cloud.server.submit(op))
    cloud.sim.run()
    return processes


def test_utilization_snapshot_keys():
    cloud = SmallCloud()
    storm(cloud, 10, linked=True)
    snapshot = cloud.server.utilization_snapshot()
    assert set(snapshot) == {"cpu", "db", "hostd_mean", "lock_wait_mean_s", "task_queue_mean"}
    assert all(value >= 0 for value in snapshot.values())


def test_bottleneck_names_a_resource():
    cloud = SmallCloud()
    storm(cloud, 20, linked=True)
    assert cloud.server.bottleneck() in ("cpu", "db", "hostd_mean")


def test_inflight_limit_caps_concurrent_tasks():
    config = ControlPlaneConfig(max_inflight_tasks=2)
    cloud = SmallCloud(config=config)
    storm(cloud, 12, linked=True)
    assert cloud.server.tasks.max_queue_depth() >= 1
    assert len(cloud.server.tasks.succeeded()) == 12


def test_linked_storm_faster_than_full_storm():
    """The paper's asymmetry at storm scale, same control-plane config."""

    def total_time(linked):
        cloud = SmallCloud(seed=11)
        storm(cloud, 24, linked=linked)
        return cloud.sim.now

    assert total_time(True) < total_time(False) / 3


def test_full_storm_bottleneck_is_data_plane():
    cloud = SmallCloud(seed=13)
    storm(cloud, 24, linked=False)
    tasks = cloud.server.tasks.succeeded()
    data = sum(task.plane_seconds("data") for task in tasks)
    control = sum(task.plane_seconds("control") for task in tasks)
    assert data > control


def test_linked_storm_bottleneck_is_control_plane():
    cloud = SmallCloud(seed=13)
    storm(cloud, 24, linked=True)
    tasks = cloud.server.tasks.succeeded()
    data = sum(task.plane_seconds("data") for task in tasks)
    control = sum(task.plane_seconds("control") for task in tasks)
    assert control > data
    assert data == 0.0


def test_adopt_host_twice_rejected():
    cloud = SmallCloud()
    with pytest.raises(ValueError, match="already adopted"):
        cloud.server.adopt_host(cloud.hosts[0])


def test_agent_lookup_unknown_host():
    from repro.datacenter import Host

    cloud = SmallCloud()
    stranger = Host(entity_id="host-x", name="stranger")
    with pytest.raises(KeyError, match="not managed"):
        cloud.server.agent(stranger)


def test_submit_returns_completed_task_as_value():
    cloud = SmallCloud()
    op = CloneVM(cloud.template, "one", cloud.hosts[0], cloud.datastores[0], linked=True)
    process = cloud.server.submit(op)
    task = cloud.sim.run(until=process)
    assert task.op_type == "clone_linked"
    assert task.result.name == "one"
