"""Unit tests for the host-agent channel."""

import dataclasses

import pytest

from repro.controlplane import DEFAULT_COSTS, HostAgent, HostAgentError
from repro.datacenter import Host, HostState
from repro.sim import RandomStreams, Simulator


def make_agent(sim, op_slots=8, costs=DEFAULT_COSTS, seed=1):
    host = Host(entity_id="host-1", name="esx01")
    agent = HostAgent(
        sim, host, costs, rng=RandomStreams(seed).stream("hostd"), op_slots=op_slots
    )
    return host, agent


def run_call(sim, agent, kind="op", median=1.0):
    box = {}

    def proc():
        box["elapsed"] = yield from agent.call(kind, median)

    process = sim.spawn(proc())
    sim.run(until=process)
    return box["elapsed"]


def test_call_takes_about_median():
    sim = Simulator()
    _, agent = make_agent(sim)
    elapsed = run_call(sim, agent, median=2.0)
    assert 0.5 < elapsed < 20.0


def test_slots_limit_concurrent_calls():
    sim = Simulator()
    _, agent = make_agent(sim, op_slots=1)
    finishes = []

    def proc():
        yield from agent.call("op", 1.0)
        finishes.append(sim.now)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    assert finishes[1] > finishes[0]
    assert agent.metrics.counter("calls").value == 2


def test_unusable_host_raises():
    sim = Simulator()
    host, agent = make_agent(sim)
    host.state = HostState.DISCONNECTED

    def proc():
        with pytest.raises(HostAgentError, match="disconnected"):
            yield from agent.call("op", 1.0)
        yield sim.timeout(0.0)

    process = sim.spawn(proc())
    sim.run(until=process)


def test_injected_failure_raises_once():
    sim = Simulator()
    _, agent = make_agent(sim)
    agent.inject_failure()

    def proc():
        with pytest.raises(HostAgentError, match="injected"):
            yield from agent.call("op", 1.0)
        # Next call succeeds.
        yield from agent.call("op", 1.0)
        return "recovered"

    process = sim.spawn(proc())
    assert sim.run(until=process) == "recovered"


def test_call_timeout_surfaces_as_error():
    sim = Simulator()
    costs = dataclasses.replace(DEFAULT_COSTS, host_call_timeout_s=0.5)
    _, agent = make_agent(sim, costs=costs)

    def proc():
        with pytest.raises(HostAgentError, match="timed out"):
            yield from agent.call("slow-op", 10.0)
        return sim.now

    process = sim.spawn(proc())
    # Gave up exactly at the timeout deadline.
    assert sim.run(until=process) == pytest.approx(0.5)
    assert agent.metrics.counter("timeouts").value == 1


def test_slot_released_after_timeout():
    sim = Simulator()
    costs = dataclasses.replace(DEFAULT_COSTS, host_call_timeout_s=0.5)
    _, agent = make_agent(sim, op_slots=1, costs=costs)
    log = []

    def slow():
        try:
            yield from agent.call("slow", 10.0)
        except HostAgentError:
            log.append("timeout")

    def fast():
        yield from agent.call("fast", 0.1)
        log.append("fast-done")

    sim.spawn(slow())
    sim.spawn(fast())
    sim.run()
    assert log == ["timeout", "fast-done"]


def test_utilization_positive_after_calls():
    sim = Simulator()
    _, agent = make_agent(sim)
    run_call(sim, agent)
    sim.run(until=sim.now + 10.0)
    assert 0.0 < agent.utilization() <= 1.0


def test_timeout_charges_busy_seconds():
    sim = Simulator()
    costs = dataclasses.replace(DEFAULT_COSTS, host_call_timeout_s=0.5)
    _, agent = make_agent(sim, costs=costs)

    def proc():
        with pytest.raises(HostAgentError, match="timed out"):
            yield from agent.call("slow-op", 10.0)

    process = sim.spawn(proc())
    sim.run(until=process)
    # The slot was held (and the agent busy) for the full timeout, so
    # utilization counts it — timeout storms must not look idle.
    sim.run(until=1.0)
    assert agent.utilization() == pytest.approx(0.5 / (1.0 * 8))


def test_open_breaker_fails_fast_without_holding_a_slot():
    from repro.controlplane.resilience import BreakerPolicy, CircuitBreaker

    sim = Simulator()
    _, agent = make_agent(sim)
    agent.breaker = CircuitBreaker(
        sim, BreakerPolicy(failure_threshold=1, cooldown_s=60.0), name="esx01"
    )
    agent.inject_failure()

    def proc():
        with pytest.raises(HostAgentError, match="injected"):
            yield from agent.call("op", 1.0)
        start = sim.now
        with pytest.raises(HostAgentError, match="circuit breaker open"):
            yield from agent.call("op", 1.0)
        # Fail fast: no slot wait, no timeout burned.
        assert sim.now == start
        yield sim.timeout(0.0)

    process = sim.spawn(proc())
    sim.run(until=process)
    assert agent.metrics.counter("breaker_rejections").value == 1
    assert agent.breaker.fast_fails == 1
