"""Crash recovery: journal lifecycle, reconciliation, exactly-once.

Covers the task journal's write-ahead records, the server's crash/restart
token protocol, the reconciliation verdict paths (adopt / reissue /
requeue), the exactly-once invariant under a mid-storm crash, and the
dead-letter dedup regression (journal terminal record wins on replay).
"""

import pytest

from repro.controlplane import ControlPlaneConfig
from repro.controlplane.recovery import (
    NULL_JOURNAL,
    PROBE_ABSENT,
    TaskJournal,
    crash_cause,
)
from repro.controlplane.resilience import RetryPolicy
from repro.controlplane.server import ManagementServer
from repro.controlplane.task_manager import Task, TaskState
from repro.core.experiments import StormRig
from repro.faults.chaos import check_exactly_once, run_crash_point
from repro.faults.errors import ServerCrashed
from repro.operations.base import Operation
from repro.sim import RandomStreams, Simulator
from repro.sim.kernel import Interrupt


# -- crash_cause -------------------------------------------------------------


def test_crash_cause_unwraps_interrupt_and_bare_error():
    crash = ServerCrashed("vc01 crashed")
    assert crash_cause(Interrupt(crash)) is crash
    assert crash_cause(crash) is crash
    assert crash_cause(Interrupt("host died")) is None
    assert crash_cause(ValueError("boom")) is None


# -- the journal -------------------------------------------------------------


def test_journal_records_full_lifecycle():
    rig = StormRig(seed=0, hosts=4, datastores=2, journal=True)
    rig.closed_loop_storm(total=4, concurrency=2, linked=True)

    journal = rig.server.journal
    assert journal.enabled
    assert len(journal) >= 3 * 4  # admit + >=1 dispatch + terminal per task
    assert journal.open_task_ids() == []
    for task in rig.server.tasks.tasks:
        assert journal.admitted(task.task_id)
        dispatches = journal.dispatches(task.task_id)
        assert dispatches
        assert dispatches[0].idempotency_key == f"task-{task.task_id}:attempt-1"
        record = journal.terminal_record(task.task_id)
        assert record is not None
        assert record.state == "success"
    assert all(n == 1 for n in journal.terminal_counts().values())


def test_journal_terminal_record_is_first_wins():
    journal = TaskJournal()
    task = Task(task_id=7, op_type="clone", submitted_at=0.0)
    task.state = TaskState.SUCCESS
    task.finished_at = 5.0
    journal.record_terminal(task)
    task.state = TaskState.ERROR
    journal.record_terminal(task)  # replay path reaching it again
    assert journal.terminal_counts() == {7: 1}
    assert journal.terminal_record(7).state == "success"


def test_null_journal_is_inert():
    task = Task(task_id=1, op_type="clone", submitted_at=0.0)
    NULL_JOURNAL.record_admit(task)
    NULL_JOURNAL.record_dispatch(task, 1)
    NULL_JOURNAL.record_terminal(task)
    assert not NULL_JOURNAL.enabled
    assert len(NULL_JOURNAL) == 0
    assert not NULL_JOURNAL.admitted(1)
    assert NULL_JOURNAL.terminal_record(1) is None
    assert NULL_JOURNAL.open_task_ids() == []


# -- crash / restart protocol ------------------------------------------------


def test_crash_tokens_nest_and_submit_refuses_while_down():
    sim = Simulator()
    server = ManagementServer(sim, RandomStreams(seed=1), journal=TaskJournal())
    server.crash("window-a")
    assert server.crashed

    class NoOp:
        op_type = type("OpType", (), {"value": "noop"})

    errors: list[BaseException] = []

    def waiter():
        try:
            yield server.submit(NoOp())
        except Exception as error:  # noqa: BLE001 - asserted below
            errors.append(error)

    sim.spawn(waiter(), name="waiter")
    sim.run()
    # The submission failed its process with ServerCrashed; no task row.
    assert [type(e) for e in errors] == [ServerCrashed]
    assert server.tasks.tasks == []

    server.crash("window-b")
    server.restart("window-a")
    assert server.crashed  # the overlapping window still holds it down
    server.restart("window-b")
    assert not server.crashed
    sim.run()  # the (empty) recovery replay must drain
    assert sim.peek() == float("inf")
    assert len(server.recovery.crashes) == 1


def test_operation_recovery_protocol_defaults():
    operation = Operation.__new__(Operation)
    assert operation.recovery_probe(None, None) == PROBE_ABSENT
    assert operation.recovery_adopt(None, None) is None
    assert operation.recovery_rollback(None, None) is None


# -- reconciliation verdicts under a real crash ------------------------------


def test_crash_mid_linked_storm_holds_exactly_once():
    result = run_crash_point(
        seed=0, crash_at_s=3.0, downtime_s=30.0, total=8, concurrency=3
    )
    assert result.ok, result.violations
    assert result.parked > 0
    assert result.completed == 8
    assert result.dead_letters == 0
    # Every parked task got exactly one verdict.
    assert result.adopted + result.reissued + result.requeued == result.parked
    assert result.mttr_s > 0.0


def test_crash_mid_full_copy_reissues_idempotently():
    result = run_crash_point(
        seed=0, crash_at_s=60.0, downtime_s=30.0, total=6, concurrency=3,
        linked=False,
    )
    assert result.ok, result.violations
    assert result.reissued > 0  # mid-copy work cannot be adopted
    assert result.completed == 6


def test_crash_requeues_tasks_waiting_at_dispatch():
    # run_crash_point caps max_inflight below the worker concurrency, so an
    # early crash always catches at least one task at the dispatch wait.
    result = run_crash_point(
        seed=1, crash_at_s=2.0, downtime_s=10.0, total=8, concurrency=4
    )
    assert result.ok, result.violations
    assert result.requeued > 0
    assert result.completed == 8


# -- dead-letter dedup on replay (the fixed bug) -----------------------------


def _manager_with_retries():
    sim = Simulator()
    server = ManagementServer(
        sim,
        RandomStreams(seed=1),
        config=ControlPlaneConfig(
            retry_policy=RetryPolicy(max_attempts=2, base_backoff_s=0.1)
        ),
        journal=TaskJournal(),
    )
    return server.tasks


def test_dead_letter_deduped_when_failed_twice():
    tasks = _manager_with_retries()
    task = Task(task_id=1, op_type="clone", submitted_at=0.0)
    tasks.tasks.append(task)
    error = ServerCrashed("boom")  # retryable: dead letters apply

    tasks._fail_terminally(task, error)
    assert len(tasks.dead_letters) == 1
    tasks._fail_terminally(task, error)  # replay reaches the terminal again
    assert len(tasks.dead_letters) == 1
    assert tasks.metrics.counter("dead_letter_deduped").value == 1


def test_journal_terminal_record_blocks_second_dead_letter():
    tasks = _manager_with_retries()
    task = Task(task_id=2, op_type="clone", submitted_at=0.0)
    tasks.tasks.append(task)
    task.state = TaskState.ERROR
    task.error = "ServerCrashed: boom"
    task.finished_at = 1.0
    # The terminal record survived the crash window; replay must not grow
    # a fresh dead letter for it.
    tasks.journal.record_terminal(task, dead_letter=True)

    tasks._record_dead_letter(task, ServerCrashed("boom"))
    assert tasks.dead_letters == []
    assert tasks.metrics.counter("dead_letter_deduped").value == 1


def test_check_exactly_once_flags_duplicate_dead_letters():
    tasks = _manager_with_retries()
    task = Task(task_id=3, op_type="clone", submitted_at=0.0)
    tasks.tasks.append(task)
    tasks._fail_terminally(task, ServerCrashed("boom"))
    # Simulate the pre-fix bug: a second dead letter for the same task.
    tasks.dead_letters.append(tasks.dead_letters[0])

    violations = check_exactly_once(tasks.recovery.server)
    assert any("dead-lettered 2 times" in v for v in violations)


# -- accounting invariant ----------------------------------------------------


def test_assert_accounted_raises_on_stranded_tasks():
    tasks = _manager_with_retries()
    task = Task(task_id=4, op_type="clone", submitted_at=0.0)
    tasks.tasks.append(task)
    with pytest.raises(RuntimeError, match="unaccounted"):
        tasks.assert_accounted()
    task.state = TaskState.SUCCESS
    tasks.assert_accounted()
