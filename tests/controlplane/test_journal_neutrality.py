"""Journal neutrality: durability must not perturb the schedule.

The differential test the crash-recovery ISSUE demands: run the same
seeded storm with the task journal on and with ``NULL_JOURNAL``, and
require the *task schedules* — every task's submit/start/finish time,
state, and attempt count — to be identical. Journal appends are pure
synchronous bookkeeping riding DB rows the task manager already writes,
so they must not shift any workload event; this holds the committed
exhibits byte-identical whether or not durability is enabled.
"""

import pytest

from repro.core.experiments import StormRig
from repro.faults.injector import FaultInjector, FaultTargets
from repro.faults.schedule import standard_fault_schedule


def schedule_of(rig):
    return [
        (
            task.task_id,
            task.op_type,
            task.submitted_at,
            task.started_at,
            task.finished_at,
            task.state.name,
            task.attempts,
        )
        for task in rig.server.tasks.tasks
    ]


def run_storm(journal: bool, faults: bool = False):
    rig = StormRig(seed=3, hosts=8, datastores=2, journal=journal)
    injector = None
    if faults:
        injector = FaultInjector(
            rig.sim,
            FaultTargets.for_server(rig.server),
            standard_fault_schedule(600.0),
            rng=rig.streams.stream("fault-injector"),
        ).start()
    summary = rig.closed_loop_storm(total=48, concurrency=12, linked=True)
    if injector is not None:
        rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))
    return rig, summary


@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulted"])
def test_task_schedule_identical_with_and_without_journal(faults):
    rig_off, summary_off = run_storm(journal=False, faults=faults)
    rig_on, summary_on = run_storm(journal=True, faults=faults)

    assert schedule_of(rig_on) == schedule_of(rig_off)
    assert summary_on == summary_off
    # The journal run actually recorded something — the comparison is
    # not vacuous.
    assert len(rig_on.server.journal) >= 3 * 48
    assert rig_on.server.journal.open_task_ids() == []
    assert len(rig_off.server.journal) == 0
