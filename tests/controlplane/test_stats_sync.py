"""Tests for the periodic statistics-collection load."""

import pytest

from repro.controlplane import StatsCollector
from repro.controlplane.stats_sync import ROWS_PER_LEVEL

from tests.operations.conftest import SmallCloud


def run_collection(level=1, interval=20.0, horizon=200.0, hosts=4):
    cloud = SmallCloud(seed=8, hosts=hosts)
    collector = StatsCollector(cloud.server, interval_s=interval, level=level)
    collector.start(until=horizon)
    cloud.sim.run(until=horizon)
    cloud.sim.run()
    return cloud, collector


def test_collection_writes_rows_per_host():
    cloud, collector = run_collection(level=1, interval=20.0, horizon=200.0, hosts=4)
    cycles = collector.metrics.counter("cycles").value
    # ~9 intervals x 4 hosts (the final wake-up exits before collecting).
    assert cycles == 9 * 4
    assert collector.metrics.counter("rows").value == cycles


def test_higher_level_writes_more_rows():
    _, low = run_collection(level=1)
    _, high = run_collection(level=4)
    assert (
        high.metrics.counter("rows").value
        == low.metrics.counter("rows").value * ROWS_PER_LEVEL[4]
    )


def test_collection_consumes_database():
    cloud, _ = run_collection(level=4, horizon=400.0)
    assert cloud.server.database.metrics.counter("writes").value > 0
    assert cloud.server.database.utilization() > 0


def test_unusable_hosts_skipped():
    from repro.datacenter import HostState

    cloud = SmallCloud(seed=8, hosts=2)
    cloud.hosts[0].state = HostState.MAINTENANCE
    collector = StatsCollector(cloud.server, interval_s=20.0)
    collector.start(until=100.0)
    cloud.sim.run(until=100.0)
    cloud.sim.run()
    # Only the usable host was polled.
    assert collector.metrics.counter("cycles").value == 4 * 1


def test_pull_errors_counted():
    cloud = SmallCloud(seed=8, hosts=1)
    cloud.server.agent(cloud.hosts[0]).inject_failure()
    collector = StatsCollector(cloud.server, interval_s=20.0)
    collector.start(until=50.0)
    cloud.sim.run(until=50.0)
    cloud.sim.run()
    assert collector.metrics.counter("pull_errors").value == 1


def test_stop_halts_collection():
    cloud = SmallCloud(seed=8, hosts=1)
    collector = StatsCollector(cloud.server, interval_s=10.0)
    collector.start()
    cloud.sim.run(until=35.0)
    collector.stop()
    cloud.sim.run()
    assert collector.metrics.counter("cycles").value == 3


def test_validation():
    cloud = SmallCloud(seed=8, hosts=1)
    with pytest.raises(ValueError):
        StatsCollector(cloud.server, interval_s=0.0)
    with pytest.raises(ValueError):
        StatsCollector(cloud.server, level=7)
    collector = StatsCollector(cloud.server)
    collector.start(until=10.0)
    with pytest.raises(RuntimeError):
        collector.start()


def test_stats_load_reduces_provisioning_headroom():
    """The ISCA'10 point: baseline stats load competes with provisioning.

    With a small DB connection pool, hot level-4 collection over every
    host keeps the database busy and the same clone storm takes visibly
    longer to finish.
    """
    from repro.controlplane import ControlPlaneConfig
    from repro.operations import CloneVM

    def storm_makespan(with_stats):
        horizon = 2000.0
        cloud = SmallCloud(seed=9, hosts=4, config=ControlPlaneConfig(db_connections=2))
        if with_stats:
            collector = StatsCollector(cloud.server, interval_s=0.5, level=4)
            collector.start(until=horizon)
        for index in range(30):
            cloud.server.submit(
                CloneVM(
                    cloud.template,
                    f"c{index}",
                    cloud.hosts[index % 4],
                    cloud.datastores[0],
                    linked=True,
                )
            )
        cloud.sim.run(until=horizon)
        cloud.sim.run()
        done = cloud.server.tasks.succeeded()
        assert len(done) == 30
        return max(task.finished_at for task in done)

    quiet = storm_makespan(False)
    noisy = storm_makespan(True)
    assert noisy > 1.5 * quiet
