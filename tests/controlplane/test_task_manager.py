"""Unit tests for the task manager lifecycle."""

import pytest

from repro.controlplane import TaskState
from repro.controlplane.task_manager import TaskManager


def make_tm(sim, database, max_inflight=4):
    return TaskManager(sim, database, max_inflight=max_inflight)


def test_successful_task_lifecycle(sim, database):
    manager = make_tm(sim, database)

    def body(task):
        task.phases.append(("work", "control", 1.0))
        yield sim.timeout(1.0)

    def proc():
        yield from manager.run_task("power_on", body)

    process = sim.spawn(proc())
    sim.run(until=process)
    (task,) = manager.tasks
    assert task.state == TaskState.SUCCESS
    assert task.latency > 1.0  # includes two DB writes
    assert task.queue_wait >= 0.0
    assert task.plane_seconds("control") == 1.0
    assert manager.succeeded("power_on") == [task]


def test_failed_task_marked_error_and_reraises(sim, database):
    manager = make_tm(sim, database)

    def body(task):
        yield sim.timeout(0.5)
        raise RuntimeError("host exploded")

    def proc():
        with pytest.raises(RuntimeError, match="exploded"):
            yield from manager.run_task("clone", body)
        return "ok"

    process = sim.spawn(proc())
    assert sim.run(until=process) == "ok"
    (task,) = manager.tasks
    assert task.state == TaskState.ERROR
    assert "host exploded" in task.error
    assert manager.failed() == [task]
    assert manager.succeeded() == []
    assert task.finished_at is not None


def test_inflight_limit_queues_tasks(sim, database):
    manager = make_tm(sim, database, max_inflight=1)
    starts = []

    def body(task):
        starts.append(sim.now)
        yield sim.timeout(10.0)

    def proc():
        yield from manager.run_task("clone", body)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    assert starts[1] >= starts[0] + 10.0
    assert manager.max_queue_depth() >= 1


def test_priority_orders_dispatch(sim, database):
    manager = make_tm(sim, database, max_inflight=1)
    order = []

    def body_factory(tag, duration):
        def body(task):
            order.append(tag)
            yield sim.timeout(duration)

        return body

    def proc(tag, priority, delay, duration=1.0):
        yield sim.timeout(delay)
        yield from manager.run_task("op", body_factory(tag, duration), priority=priority)

    # Holder occupies the single slot for 20s; bulk and interactive queue
    # behind it (submitted at t=1 and t=2) and must dispatch by priority.
    sim.spawn(proc("holder", 5.0, delay=0.0, duration=20.0))
    sim.spawn(proc("bulk", 9.0, delay=1.0))
    sim.spawn(proc("interactive", 1.0, delay=2.0))
    sim.run()
    assert order == ["holder", "interactive", "bulk"]


def test_task_ids_unique_and_ordered(sim, database):
    manager = make_tm(sim, database)

    def body(task):
        yield sim.timeout(0.1)

    def proc():
        yield from manager.run_task("op", body)

    for _ in range(5):
        sim.spawn(proc())
    sim.run()
    ids = [task.task_id for task in manager.tasks]
    assert ids == sorted(ids)
    assert len(set(ids)) == 5


def test_queue_depth_series_returns_steps(sim, database):
    manager = make_tm(sim, database, max_inflight=1)

    def body(task):
        yield sim.timeout(5.0)

    def proc():
        yield from manager.run_task("op", body)

    sim.spawn(proc())
    sim.spawn(proc())
    sim.run()
    series = manager.queue_depth_series()
    depths = [depth for _, depth in series]
    assert max(depths) >= 1
    assert depths[-1] == 0


def test_latency_metrics_recorded_per_type(sim, database):
    manager = make_tm(sim, database)

    def body(task):
        yield sim.timeout(1.0)

    def proc(op_type):
        yield from manager.run_task(op_type, body)

    sim.spawn(proc("clone"))
    sim.spawn(proc("power_on"))
    sim.run()
    assert manager.metrics.latency("latency.clone").count == 1
    assert manager.metrics.latency("latency.power_on").count == 1
    assert manager.metrics.latency("latency.all").count == 2


class TestPerTypeLimits:
    def test_capped_type_serializes(self, sim, database):
        from repro.controlplane.task_manager import TaskManager

        manager = TaskManager(
            sim, database, max_inflight=16, per_type_limits={"clone_linked": 1}
        )
        starts = []

        def body(task):
            starts.append((task.op_type, sim.now))
            yield sim.timeout(10.0)

        def proc(op_type):
            yield from manager.run_task(op_type, body)

        sim.spawn(proc("clone_linked"))
        sim.spawn(proc("clone_linked"))
        sim.spawn(proc("power_on"))
        sim.run()
        clone_starts = sorted(t for op, t in starts if op == "clone_linked")
        power_starts = [t for op, t in starts if op == "power_on"]
        # Clones serialized by the cap; the uncapped power op ran freely.
        assert clone_starts[1] >= clone_starts[0] + 10.0
        assert power_starts[0] < clone_starts[1]

    def test_uncapped_types_unaffected(self, sim, database):
        from repro.controlplane.task_manager import TaskManager

        manager = TaskManager(
            sim, database, max_inflight=16, per_type_limits={"migrate": 1}
        )
        starts = []

        def body(task):
            starts.append(sim.now)
            yield sim.timeout(5.0)

        def proc():
            yield from manager.run_task("power_on", body)

        sim.spawn(proc())
        sim.spawn(proc())
        sim.run()
        assert abs(starts[0] - starts[1]) < 1.0

    def test_config_validates_limits(self):
        import pytest

        from repro.controlplane import ControlPlaneConfig

        with pytest.raises(ValueError):
            ControlPlaneConfig(per_type_limits={"clone_linked": 0})

    def test_server_wires_limits_through(self):
        from repro.controlplane import ControlPlaneConfig
        from tests.operations.conftest import SmallCloud
        from repro.operations import CloneVM

        cloud = SmallCloud(
            seed=2, config=ControlPlaneConfig(per_type_limits={"clone_linked": 1})
        )
        processes = [
            cloud.server.submit(
                CloneVM(
                    cloud.template,
                    f"c{i}",
                    cloud.hosts[i % 4],
                    cloud.datastores[0],
                    linked=True,
                )
            )
            for i in range(4)
        ]
        cloud.sim.run()
        tasks = [process.value for process in processes]
        # Serialized: no two tasks overlap in their running window.
        windows = sorted((t.started_at, t.finished_at) for t in tasks)
        for (s1, f1), (s2, f2) in zip(windows, windows[1:]):
            assert s2 >= f1 - 1e-9
