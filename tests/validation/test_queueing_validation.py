"""Validation: the simulator matches closed-form queueing theory.

These tests build the textbook systems out of the same primitives the
control-plane model uses (Resource pools, FairShareLink) and check the
simulated means against M/M/1, M/M/c, and processor-sharing formulas.
Agreement here is what licenses trusting the model where no closed form
exists.
"""

import pytest

from repro.analysis.queueing import (
    erlang_c,
    mm1_mean_wait,
    mmc_mean_wait,
    processor_sharing_mean_response,
    utilization,
)
from repro.sim import RandomStreams, Resource, Simulator
from repro.storage import FairShareLink


def simulate_mmc(arrival_rate, service_rate, servers, jobs, seed=1):
    """An M/M/c queue from kernel primitives; returns mean queue wait."""
    sim = Simulator()
    streams = RandomStreams(seed)
    arrivals_rng = streams.stream("arrivals")
    service_rng = streams.stream("service")
    pool = Resource(sim, capacity=servers)
    waits = []

    def job():
        request = pool.request()
        enqueued = sim.now
        yield request
        waits.append(sim.now - enqueued)
        yield sim.timeout(service_rng.expovariate(service_rate))
        pool.release(request)

    def source():
        for _ in range(jobs):
            yield sim.timeout(arrivals_rng.expovariate(arrival_rate))
            sim.spawn(job())

    sim.spawn(source())
    sim.run()
    # Discard warmup.
    steady = waits[len(waits) // 10 :]
    return sum(steady) / len(steady)


class TestFormulas:
    def test_mm1_wait_formula(self):
        # rho=0.5, mu=1: Wq = 0.5/(1-0.5)/1 = 1.0
        assert mm1_mean_wait(0.5, 1.0) == pytest.approx(1.0)

    def test_mm1_rejects_unstable(self):
        with pytest.raises(ValueError, match="unstable"):
            mm1_mean_wait(1.0, 1.0)

    def test_erlang_c_single_server_equals_rho(self):
        # For c=1, P(wait) = rho.
        assert erlang_c(1, 0.7) == pytest.approx(0.7)

    def test_erlang_c_decreases_with_servers(self):
        load = 2.0
        probabilities = [erlang_c(c, load) for c in (3, 4, 6, 10)]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_erlang_c_validation(self):
        with pytest.raises(ValueError):
            erlang_c(2, 2.0)
        with pytest.raises(ValueError):
            erlang_c(0, 0.5)

    def test_utilization(self):
        assert utilization(2.0, 1.0, servers=4) == pytest.approx(0.5)


class TestSimulatorAgainstTheory:
    def test_mm1_queue_wait_matches(self):
        arrival, service = 0.7, 1.0
        simulated = simulate_mmc(arrival, service, servers=1, jobs=60_000)
        theory = mm1_mean_wait(arrival, service)
        assert simulated == pytest.approx(theory, rel=0.08)

    def test_mm4_queue_wait_matches_erlang_c(self):
        arrival, service, servers = 3.2, 1.0, 4
        simulated = simulate_mmc(arrival, service, servers, jobs=60_000)
        theory = mmc_mean_wait(arrival, service, servers)
        assert simulated == pytest.approx(theory, rel=0.10)

    def test_low_load_waits_are_negligible(self):
        simulated = simulate_mmc(0.1, 1.0, servers=4, jobs=5_000)
        assert simulated < 0.01

    def test_fair_share_link_matches_processor_sharing(self):
        """M/M/1-PS mean response = x̄/C / (1-ρ); our link is exactly PS."""
        capacity = 100.0
        mean_size = 50.0
        arrival = 1.2  # rho = 0.6
        sim = Simulator()
        streams = RandomStreams(7)
        arrivals_rng = streams.stream("arrivals")
        size_rng = streams.stream("sizes")
        link = FairShareLink(sim, capacity_bps=capacity)
        responses = []

        def job():
            size = size_rng.expovariate(1.0 / mean_size)
            start = sim.now
            yield link.transfer(size)
            responses.append(sim.now - start)

        def source():
            for _ in range(60_000):
                yield sim.timeout(arrivals_rng.expovariate(arrival))
                sim.spawn(job())

        sim.spawn(source())
        sim.run()
        steady = responses[len(responses) // 10 :]
        simulated = sum(steady) / len(steady)
        theory = processor_sharing_mean_response(arrival, mean_size, capacity)
        assert simulated == pytest.approx(theory, rel=0.10)

    def test_processor_sharing_insensitivity_to_size_distribution(self):
        """PS mean response depends only on the *mean* size: deterministic
        sizes give the same mean response as exponential ones."""
        capacity = 100.0
        mean_size = 50.0
        arrival = 1.2

        def run(deterministic):
            sim = Simulator()
            streams = RandomStreams(9)
            arrivals_rng = streams.stream("arrivals")
            size_rng = streams.stream("sizes")
            link = FairShareLink(sim, capacity_bps=capacity)
            responses = []

            def job():
                size = mean_size if deterministic else size_rng.expovariate(1 / mean_size)
                start = sim.now
                yield link.transfer(size)
                responses.append(sim.now - start)

            def source():
                for _ in range(40_000):
                    yield sim.timeout(arrivals_rng.expovariate(arrival))
                    sim.spawn(job())

            sim.spawn(source())
            sim.run()
            steady = responses[len(responses) // 10 :]
            return sum(steady) / len(steady)

        assert run(True) == pytest.approx(run(False), rel=0.12)
