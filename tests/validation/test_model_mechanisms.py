"""Mechanism checks: measured ceilings equal their first-principles values.

R-F3's two plateaus are not arbitrary numbers — each is a closed-form
consequence of the configuration. These tests recompute the predictions
from the constants and require the simulation to land on them, so any
future change that breaks the mechanism (not just the numbers) fails
loudly.
"""

import math

import pytest

from repro.controlplane import ControlPlaneConfig, DEFAULT_COSTS
from repro.core.experiments import StormRig
from repro.storage.copy_engine import GB


def test_full_clone_ceiling_equals_storage_plane_capacity():
    """Full clones flatline at datastores x copy_slots x bandwidth / size."""
    datastores = 2
    rig = StormRig(seed=3, hosts=8, datastores=datastores)
    outcome = rig.closed_loop_storm(total=48, concurrency=48, linked=False)

    bandwidth_bps = rig.server.copy_engine.default_capacity_bps
    disk_gb = rig.template.total_disk_gb
    # Copy slots cap concurrency per datastore, but the *link* is the
    # binding resource: each datastore delivers bandwidth_bps regardless
    # of how many slots share it.
    predicted_per_hour = datastores * bandwidth_bps / (disk_gb * GB) * 3600.0
    assert outcome["throughput_per_hour"] == pytest.approx(
        predicted_per_hour, rel=0.10
    )


def test_linked_clone_ceiling_equals_cpu_pool_capacity():
    """Linked clones flatline at cpu_workers / E[cpu seconds per clone].

    Per-clone CPU phases: validate + placement + commit. Service times are
    lognormal around the medians, so E[X] = median * exp(sigma^2 / 2).
    """
    config = ControlPlaneConfig()
    rig = StormRig(seed=3, hosts=16, datastores=4, config=config)
    outcome = rig.closed_loop_storm(total=96, concurrency=64, linked=True)

    costs = DEFAULT_COSTS
    median_cpu = costs.api_validate_s + costs.placement_s + costs.result_commit_s
    mean_factor = math.exp(costs.sigma**2 / 2.0)
    predicted_per_hour = config.cpu_workers / (median_cpu * mean_factor) * 3600.0
    assert outcome["throughput_per_hour"] == pytest.approx(
        predicted_per_hour, rel=0.15
    )


def test_linked_ceiling_scales_with_cpu_workers():
    """Doubling the op-thread pool doubles the linked ceiling (±20%)."""

    def ceiling(workers):
        rig = StormRig(
            seed=3,
            hosts=16,
            datastores=4,
            config=ControlPlaneConfig(cpu_workers=workers),
        )
        return rig.closed_loop_storm(total=96, concurrency=64, linked=True)[
            "throughput_per_hour"
        ]

    assert ceiling(8) == pytest.approx(2 * ceiling(4), rel=0.20)


def test_full_ceiling_scales_with_datastores():
    """Adding datastores adds storage lanes: ceiling scales linearly."""

    def ceiling(datastores):
        rig = StormRig(seed=3, hosts=8, datastores=datastores)
        return rig.closed_loop_storm(total=32, concurrency=32, linked=False)[
            "throughput_per_hour"
        ]

    assert ceiling(4) == pytest.approx(2 * ceiling(2), rel=0.15)


def test_vmotion_memory_copy_time_exact():
    """The vMotion data phase is memory_gb / vmotion_bps, exactly."""
    from repro.operations import CloneVM, MigrateVM, PowerOn

    rig = StormRig(seed=4, hosts=4, datastores=2)
    process = rig.server.submit(
        CloneVM(rig.template, "m", rig.hosts[0], rig.datastores[0], linked=True)
    )
    vm = rig.sim.run(until=process).result
    rig.sim.run(until=rig.server.submit(PowerOn(vm)))
    task = rig.sim.run(until=rig.server.submit(MigrateVM(vm, rig.hosts[1])))
    expected = vm.memory_gb * 1024**3 / DEFAULT_COSTS.vmotion_bps
    assert task.plane_seconds("data") == pytest.approx(expected, rel=1e-6)
