"""Unit tests for the characterization pipeline."""

import pytest

from repro.analysis import (
    arrival_rate_series,
    completion_rate_series,
    latency_by_type,
    latency_cdf,
    latency_stats,
    mix_comparison,
    operation_counts,
    operation_mix,
    plane_breakdown,
    plane_breakdown_by_type,
    render_series,
    render_table,
)
from repro.analysis.timeseries import peak_to_trough
from repro.traces import TraceRecord


def record(op="deploy", submitted=0.0, wait=1.0, service=4.0, control=2.0, data=1.0, success=True):
    return TraceRecord(
        op_type=op,
        submitted_at=submitted,
        started_at=submitted + wait,
        finished_at=submitted + wait + service,
        success=success,
        control_s=control,
        data_s=data,
    )


class TestMix:
    def test_counts_and_mix(self):
        records = [record("deploy"), record("deploy"), record("destroy"), record("power_on")]
        assert operation_counts(records) == {"deploy": 2, "destroy": 1, "power_on": 1}
        mix = operation_mix(records)
        assert mix["deploy"] == pytest.approx(0.5)
        assert sum(mix.values()) == pytest.approx(1.0)

    def test_empty_mix(self):
        assert operation_mix([]) == {}

    def test_mix_comparison_rows_ordered_by_first_trace(self):
        traces = {
            "cloud": [record("deploy")] * 8 + [record("power_on")] * 2,
            "classic": [record("power_on")] * 9 + [record("deploy")],
        }
        headers, rows = mix_comparison(traces)
        assert headers == ["operation", "cloud (%)", "classic (%)"]
        assert rows[0][0] == "deploy"
        assert rows[0][1] == "80.0"
        assert rows[0][2] == "10.0"


class TestLatency:
    def test_stats(self):
        records = [record(service=s) for s in (1.0, 2.0, 3.0, 4.0, 5.0)]
        stats = latency_stats(records)
        assert stats["count"] == 5
        assert stats["p50"] == pytest.approx(4.0)  # wait 1 + service 3
        assert stats["max"] == pytest.approx(6.0)

    def test_empty_stats(self):
        assert latency_stats([])["count"] == 0

    def test_by_type_sorted_by_p50_descending(self):
        records = [record("slow", service=100.0), record("fast", service=1.0)]
        out = latency_by_type(records)
        assert list(out) == ["slow", "fast"]

    def test_cdf_monotone(self):
        records = [record(service=float(i)) for i in range(1, 50)]
        cdf = latency_cdf(records, points=10)
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert cdf[-1][1] == 1.0


class TestTimeseries:
    def test_arrival_series_bins(self):
        records = [record(submitted=t) for t in (0.0, 1.0, 2.0, 100.0)]
        series = arrival_rate_series(records, bin_s=10.0)
        assert series[0] == (0.0, pytest.approx(0.3))
        assert series[-1] == (100.0, pytest.approx(0.1))

    def test_completion_series(self):
        records = [record(submitted=0.0, wait=0.0, service=5.0)]
        series = completion_rate_series(records, bin_s=10.0)
        assert series == [(0.0, pytest.approx(0.1))]

    def test_peak_to_trough(self):
        assert peak_to_trough([(0, 1.0), (1, 4.0), (2, 2.0)]) == pytest.approx(4.0)
        assert peak_to_trough([]) == 0.0


class TestBreakdown:
    def test_plane_fractions_sum_to_one(self):
        records = [record(wait=1.0, service=4.0, control=2.0, data=1.0)]
        out = plane_breakdown(records)
        assert out["control"] == pytest.approx(2.0 / 5.0)
        assert out["data"] == pytest.approx(1.0 / 5.0)
        assert out["unattributed"] == pytest.approx(2.0 / 5.0)
        assert sum(out.values()) == pytest.approx(1.0)

    def test_empty_breakdown(self):
        out = plane_breakdown([])
        assert out == {"control": 0.0, "data": 0.0, "unattributed": 0.0}

    def test_by_type(self):
        records = [record("a", data=0.0), record("b", control=0.0)]
        out = plane_breakdown_by_type(records)
        assert out["a"]["data"] == 0.0
        assert out["b"]["control"] == 0.0


class TestReport:
    def test_render_table_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        assert "long-name" in lines[3]

    def test_render_table_row_width_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            render_table(["a", "b"], [["only-one"]])

    def test_render_series_empty(self):
        assert "(empty)" in render_series("x", [])

    def test_render_series_bars_scale(self):
        text = render_series("rate", [(0.0, 1.0), (1.0, 2.0)], bar_width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 5
        assert lines[2].count("#") == 10


class TestExportSeriesCsv:
    def test_roundtrip_rows(self, tmp_path):
        import csv

        from repro.analysis.report import export_series_csv

        path = tmp_path / "series.csv"
        count = export_series_csv(
            {"a": [(1.0, 2.0), (2.0, 3.0)], "b": [(0.0, 1.0)]}, path
        )
        assert count == 3
        with open(path) as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["series", "x", "y"]
        assert rows[1] == ["a", "1.0", "2.0"]
        assert rows[3] == ["b", "0.0", "1.0"]

    def test_empty_series(self, tmp_path):
        from repro.analysis.report import export_series_csv

        path = tmp_path / "empty.csv"
        assert export_series_csv({}, path) == 0
        assert path.read_text().startswith("series,x,y")
