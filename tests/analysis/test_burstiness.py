"""Tests for burstiness metrics."""

import pytest

from repro.analysis import arrival_cov, burstiness_summary, index_of_dispersion
from repro.analysis.burstiness import coefficient_of_variation, interarrival_times
from repro.sim import RandomStreams
from repro.traces import TraceRecord
from repro.workloads import MMPPBurst, Poisson


def records_from_times(times):
    return [
        TraceRecord(
            op_type="deploy",
            submitted_at=t,
            started_at=t,
            finished_at=t + 1.0,
            success=True,
            control_s=1.0,
            data_s=0.0,
        )
        for t in times
    ]


def draw_times(process, count, seed=1):
    rng = RandomStreams(seed).stream("arrivals")
    now, times = 0.0, []
    for _ in range(count):
        now = process.next_arrival(now, rng)
        times.append(now)
    return times


def test_interarrival_times_sorted_input_not_required():
    records = records_from_times([10.0, 0.0, 5.0])
    assert interarrival_times(records) == [5.0, 5.0]


def test_cov_constant_stream_is_zero():
    assert coefficient_of_variation([2.0, 2.0, 2.0]) == 0.0


def test_cov_too_few_samples_is_zero():
    assert coefficient_of_variation([1.0]) == 0.0


def test_poisson_cov_near_one():
    times = draw_times(Poisson(rate=1.0), 8000)
    cov = arrival_cov(records_from_times(times))
    assert 0.9 < cov < 1.1


def test_mmpp_cov_above_one():
    process = MMPPBurst(calm_rate=0.01, burst_rate=2.0, mean_calm_s=500, mean_burst_s=100)
    times = draw_times(process, 8000, seed=3)
    cov = arrival_cov(records_from_times(times))
    assert cov > 1.5


def test_idc_poisson_near_one():
    times = draw_times(Poisson(rate=1.0), 8000)
    idc = index_of_dispersion(records_from_times(times), bin_s=30.0)
    assert 0.7 < idc < 1.5


def test_idc_bursty_much_greater_than_one():
    process = MMPPBurst(calm_rate=0.01, burst_rate=2.0, mean_calm_s=500, mean_burst_s=100)
    times = draw_times(process, 8000, seed=3)
    idc = index_of_dispersion(records_from_times(times), bin_s=30.0)
    assert idc > 5.0


def test_empty_inputs():
    assert arrival_cov([]) == 0.0
    assert index_of_dispersion([]) == 0.0
    summary = burstiness_summary([])
    assert summary["operations"] == 0.0


def test_summary_keys():
    times = draw_times(Poisson(rate=1.0), 100)
    summary = burstiness_summary(records_from_times(times))
    assert set(summary) == {"arrival_cov", "index_of_dispersion", "operations"}
    assert summary["operations"] == 100.0
