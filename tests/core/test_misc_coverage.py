"""Coverage of small public-surface paths not hit elsewhere."""

import pytest

from repro.operations import CloneVM, DeleteSnapshot, OperationError, OperationType

from tests.operations.conftest import SmallCloud


def test_operation_type_families_are_disjoint():
    provisioning = OperationType.provisioning()
    reconfiguration = OperationType.reconfiguration()
    assert not provisioning & reconfiguration
    assert OperationType.DEPLOY in provisioning
    assert OperationType.EVACUATE_DATASTORE in reconfiguration
    assert OperationType.ENTER_MAINTENANCE in reconfiguration


def test_operation_repr_mentions_type():
    cloud = SmallCloud()
    op = CloneVM(cloud.template, "x", cloud.hosts[0], cloud.datastores[0], linked=True)
    assert "clone_linked" in repr(op)


def test_delete_snapshot_rejects_negative_written():
    cloud = SmallCloud()
    vm = cloud.run_op(
        CloneVM(cloud.template, "v", cloud.hosts[0], cloud.datastores[0], linked=True)
    ).result
    with pytest.raises(OperationError):
        DeleteSnapshot(vm, written_gb=-1.0)


def test_phase_helper_rejects_unknown_plane():
    from repro.operations.base import phase

    cloud = SmallCloud()
    task = type("T", (), {"phases": []})()

    def proc():
        with pytest.raises(ValueError, match="unknown plane"):
            yield from phase(task, "x", "quantum", lambda: 0.0, iter(()))
        yield cloud.sim.timeout(0.0)

    cloud.sim.run(until=cloud.sim.spawn(proc()))


def test_server_execute_alias():
    cloud = SmallCloud()
    op = CloneVM(cloud.template, "x", cloud.hosts[0], cloud.datastores[0], linked=True)
    task = cloud.sim.run(until=cloud.server.execute(op))
    assert task.result.name == "x"


def test_server_datastores_listing():
    cloud = SmallCloud()
    names = {ds.name for ds in cloud.server.datastores()}
    assert names == {"lun00", "lun01"}


def test_shard_throughput_respects_since_window():
    from repro.controlplane import ShardedControlPlane
    from repro.sim import RandomStreams, Simulator

    sim = Simulator()
    plane = ShardedControlPlane(sim, RandomStreams(1), shard_count=1)
    assert plane.throughput(since=0.0) == 0.0


def test_profile_result_report_handles_empty_window():
    import dataclasses

    from repro import CloudManagementProfiler, profiles
    from repro.workloads.arrivals import Poisson

    sleepy = dataclasses.replace(
        profiles.CLASSIC_DC,
        hosts=2,
        datastores=2,
        initial_vms_per_host=0,
        arrival_factory=lambda: Poisson(rate=1e-9),
    )
    result = CloudManagementProfiler(sleepy, seed=1).run(duration=60.0)
    report = result.report()
    assert "operations: 0" in report
    assert result.throughput() == 0.0
    assert result.failure_rate() == 0.0


def test_cli_profile_jsonl_trace(tmp_path, capsys):
    from repro.cli import main

    out = tmp_path / "t.jsonl"
    assert (
        main(["profile", "classic_dc", "--hours", "0.2", "--trace-out", str(out)]) == 0
    )
    from repro.traces import read_jsonl

    assert isinstance(read_jsonl(out), list)


def test_experiment_result_render_with_notes_and_series():
    from repro.core.experiments import ExperimentResult

    result = ExperimentResult(
        exp_id="X",
        title="t",
        headers=["a"],
        rows=[["1"]],
        series={"s": [(0.0, 1.0)]},
        notes="careful",
    )
    text = result.render()
    assert "note: careful" in text
    assert "s" in text
