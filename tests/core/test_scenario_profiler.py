"""Integration tests for Scenario, the profiler, and the experiment registry."""

import dataclasses

import pytest

from repro import CloudManagementProfiler, Scenario, profiles, run_experiment
from repro.core.experiments import EXPERIMENTS, StormRig
from repro.workloads.arrivals import Poisson


def tiny(profile=profiles.CLOUD_A):
    return dataclasses.replace(
        profile,
        hosts=4,
        datastores=2,
        orgs=2,
        initial_vms_per_host=2,
        arrival_factory=lambda: Poisson(rate=0.1),
    )


def test_scenario_runs_and_analyzes():
    result = Scenario(profile=tiny(), duration_s=1800.0, seed=3).run()
    assert len(result.trace) > 5
    mix = result.operation_mix()
    assert sum(mix.values()) == pytest.approx(1.0)
    assert 0.0 <= result.failure_rate() <= 1.0
    assert result.throughput() > 0


def test_scenario_duration_validation():
    with pytest.raises(ValueError):
        Scenario(profile=tiny(), duration_s=0.0).run()


def test_scenario_reproducible():
    a = Scenario(profile=tiny(), duration_s=900.0, seed=11).run()
    b = Scenario(profile=tiny(), duration_s=900.0, seed=11).run()
    assert [r.op_type for r in a.trace] == [r.op_type for r in b.trace]
    assert a.latency_stats() == b.latency_stats()


def test_profiler_report_sections():
    profiler = CloudManagementProfiler(tiny(), seed=5)
    result = profiler.run(duration=1800.0)
    report = result.report()
    assert "Operation mix" in report
    assert "Operation latency" in report
    assert "Plane attribution" in report
    assert "Control-plane utilization" in report
    assert profiles.CLOUD_A.name in report


def test_profiler_plane_breakdown_mostly_control_for_linked_cloud():
    """The paper's pivot, through the public API: once *all* provisioning
    is linked, aggregate management time is control-plane dominated."""
    all_linked = dataclasses.replace(tiny(), linked_clone_fraction=1.0)
    result = CloudManagementProfiler(all_linked, seed=5).run(duration=1800.0)
    breakdown = result.plane_breakdown()
    assert breakdown["control"] > breakdown["data"]
    # And per-type: linked deploys specifically are control-bound.
    deploy = result.plane_breakdown_by_type().get("deploy")
    assert deploy is not None
    assert deploy["control"] > 0.9


def test_profiler_mixed_cloud_data_time_dominated_by_minority_full_clones():
    """With even 5% full clones, the few byte-copies dominate wall time —
    the asymmetry that motivated clouds to go linked in the first place."""
    result = CloudManagementProfiler(tiny(), seed=5).run(duration=1800.0)
    deploy = result.plane_breakdown_by_type().get("deploy")
    assert deploy is not None
    assert deploy["data"] > 0.5


class TestExperimentRegistry:
    def test_all_exhibits_registered(self):
        assert set(EXPERIMENTS) == {
            "R-T1", "R-T2", "R-T3",
            "R-F1", "R-F2", "R-F3", "R-F4", "R-F5",
            "R-F6", "R-F7", "R-F8", "R-F9", "R-F10",
            "R-F-phase", "R-F-alerts", "R-F-hyperscale",
            "R-X1", "R-X2", "R-X3", "R-X4", "R-X5", "R-X6", "R-X7", "R-X8",
        }

    def test_unknown_experiment_rejected(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            run_experiment("R-F99")

    def test_t1_renders(self):
        result = run_experiment("R-T1", quick=True)
        text = result.render()
        assert "cloud_a" in text
        assert "classic_dc" in text

    def test_f4_linked_moves_orders_less_data(self):
        result = run_experiment("R-F4", seed=2, quick=True)
        full_gb = float(result.rows[0][3])
        linked_gb = float(result.rows[1][3])
        assert full_gb > 10 * max(linked_gb, 0.001)

    def test_f10_cloud_shorter_lived(self):
        result = run_experiment("R-F10", quick=True)
        cloud_p50 = float(result.rows[0][1])
        classic_p50 = float(result.rows[1][1])
        assert cloud_p50 < classic_p50 / 50


class TestStormRig:
    def test_closed_loop_completes_all(self):
        rig = StormRig(seed=1, hosts=4, datastores=2)
        outcome = rig.closed_loop_storm(total=10, concurrency=4, linked=True)
        assert outcome["completed"] == 10
        assert outcome["throughput_per_hour"] > 0
        assert outcome["bytes_written_gb"] == 0.0

    def test_full_storm_writes_bytes(self):
        rig = StormRig(seed=1, hosts=4, datastores=2)
        outcome = rig.closed_loop_storm(total=4, concurrency=4, linked=False)
        assert outcome["bytes_written_gb"] == pytest.approx(4 * 40.0)

    def test_validation(self):
        rig = StormRig(seed=1, hosts=2, datastores=2)
        with pytest.raises(ValueError):
            rig.closed_loop_storm(total=0, concurrency=1, linked=True)


def test_headline_linked_beats_full_and_is_control_bound():
    """End-to-end check of the paper's abstract claims 1+3 via the registry."""
    result = run_experiment("R-F3", seed=4, quick=True)
    linked_rows = [row for row in result.rows if row[0] == "linked"]
    full_rows = [row for row in result.rows if row[0] == "full"]
    best_linked = max(float(row[2]) for row in linked_rows)
    best_full = max(float(row[2]) for row in full_rows)
    assert best_linked > 10 * best_full
    # Full clones hit their ceiling early (storage-bound): same throughput
    # at high concurrency as at moderate.
    assert float(full_rows[-1][2]) == pytest.approx(float(full_rows[-2][2]), rel=0.2)


def test_scenario_with_stats_collection_runs_and_loads_db():
    quiet = Scenario(profile=tiny(), duration_s=900.0, seed=4).run()
    noisy = Scenario(
        profile=tiny(), duration_s=900.0, seed=4, stats_interval_s=20.0, stats_level=4
    ).run()
    quiet_writes = quiet.server.database.metrics.counter("writes").value
    noisy_writes = noisy.server.database.metrics.counter("writes").value
    assert noisy_writes > quiet_writes * 2
    # Workload itself still completed.
    assert len(noisy.trace) > 0
