"""Tests for the result archive."""

import pytest

from repro.core.experiments import ExperimentResult
from repro.results import ResultArchive


def make_result(exp_id="R-T1", rows=None):
    return ExperimentResult(
        exp_id=exp_id,
        title="Example exhibit",
        headers=["setup", "hosts"],
        rows=rows or [["cloud_a", "32"], ["cloud_b", "16"]],
        series={"line": [(1.0, 2.0), (2.0, 4.0)]},
        notes="a note",
    )


def test_store_and_load_roundtrip(tmp_path):
    archive = ResultArchive(tmp_path)
    stored = archive.store(make_result(), seed=3, quick=True, tags={"run": "ci"})
    loaded = archive.load(stored.key())
    assert loaded.exp_id == "R-T1"
    assert loaded.seed == 3
    assert loaded.quick is True
    assert loaded.tags == {"run": "ci"}
    assert loaded.result.rows == [["cloud_a", "32"], ["cloud_b", "16"]]
    assert loaded.result.series == {"line": [(1.0, 2.0), (2.0, 4.0)]}
    assert loaded.result.render()  # renders without error


def test_key_format(tmp_path):
    archive = ResultArchive(tmp_path)
    stored = archive.store(make_result(), seed=7, quick=False)
    assert stored.key() == "R-T1-seed7-full"
    assert archive.keys() == ["R-T1-seed7-full"]


def test_load_missing_raises(tmp_path):
    with pytest.raises(KeyError):
        ResultArchive(tmp_path).load("nope")


def test_diff_identical_is_empty(tmp_path):
    archive = ResultArchive(tmp_path)
    a = archive.store(make_result(), seed=1, quick=True)
    b = archive.store(make_result(), seed=2, quick=True)
    assert archive.diff(a.key(), b.key()) == []


def test_diff_reports_cell_changes(tmp_path):
    archive = ResultArchive(tmp_path)
    a = archive.store(make_result(), seed=1, quick=True)
    b = archive.store(
        make_result(rows=[["cloud_a", "64"], ["cloud_b", "16"]]), seed=2, quick=True
    )
    differences = archive.diff(a.key(), b.key())
    assert any("cloud_a" in diff and "32 -> 64" in diff for diff in differences)


def test_diff_reports_missing_rows(tmp_path):
    archive = ResultArchive(tmp_path)
    a = archive.store(make_result(), seed=1, quick=True)
    b = archive.store(make_result(rows=[["cloud_a", "32"]]), seed=2, quick=True)
    differences = archive.diff(a.key(), b.key())
    assert any("only in one run" in diff for diff in differences)


def test_diff_mismatched_experiments_rejected(tmp_path):
    archive = ResultArchive(tmp_path)
    a = archive.store(make_result("R-T1"), seed=1, quick=True)
    b = archive.store(make_result("R-F3"), seed=1, quick=True)
    with pytest.raises(ValueError):
        archive.diff(a.key(), b.key())


def test_archive_with_real_experiment(tmp_path):
    from repro import run_experiment

    archive = ResultArchive(tmp_path)
    result = run_experiment("R-T1", quick=True)
    stored = archive.store(result, seed=0, quick=True)
    loaded = archive.load(stored.key())
    assert loaded.result.rows == [[str(c) for c in row] for row in result.rows]
