"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "cloud_a" in out
    assert "R-F3" in out


def test_experiment_command(capsys):
    assert main(["experiment", "R-T1", "--quick"]) == 0
    out = capsys.readouterr().out
    assert "R-T1" in out
    assert "classic_dc" in out


def test_storm_command(capsys):
    assert main(["storm", "--clones", "8", "--concurrency", "4", "--hosts", "4"]) == 0
    out = capsys.readouterr().out
    assert "linked storm: 8 clones" in out
    assert "bottleneck" in out


def test_storm_full_mode(capsys):
    assert main(["storm", "--clones", "2", "--full", "--hosts", "2"]) == 0
    out = capsys.readouterr().out
    assert "full storm" in out
    assert "data written: 80 GB" in out


def test_profile_command_with_trace(tmp_path, capsys):
    trace_path = tmp_path / "trace.csv"
    assert (
        main(
            [
                "profile",
                "classic_dc",
                "--hours",
                "0.5",
                "--seed",
                "2",
                "--trace-out",
                str(trace_path),
            ]
        )
        == 0
    )
    out = capsys.readouterr().out
    assert "Operation mix" in out
    assert trace_path.exists()
    from repro.traces import read_csv

    assert isinstance(read_csv(trace_path), list)


def test_profile_trace_bad_extension(tmp_path, capsys):
    code = main(
        ["profile", "classic_dc", "--hours", "0.1", "--trace-out", str(tmp_path / "t.xml")]
    )
    assert code == 2


def test_unknown_profile_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["profile", "not-a-cloud"])


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "R-F99"])
