"""Tests for the parallel sweep runner (repro.core.parallel)."""

import math
import os

import pytest

from repro.core.parallel import (
    ENV_VAR,
    derive_seed,
    resolve_parallelism,
    run_cells,
)


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)


class TestResolveParallelism:
    def test_default_is_serial(self):
        assert resolve_parallelism() == 1

    def test_explicit_request_wins(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "8")
        assert resolve_parallelism(3) == 3

    def test_env_var_honoured(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "4")
        assert resolve_parallelism() == 4

    def test_zero_means_cpu_count(self):
        assert resolve_parallelism(0) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_parallelism(-1)

    def test_garbage_env_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "many")
        with pytest.raises(ValueError, match="not an integer"):
            resolve_parallelism()

    def test_blank_env_is_serial(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "  ")
        assert resolve_parallelism() == 1


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(0, 0) == derive_seed(0, 0)
        assert derive_seed(123, 7) == derive_seed(123, 7)

    def test_distinct_across_indices_and_bases(self):
        seeds = {derive_seed(base, index) for base in range(4) for index in range(64)}
        assert len(seeds) == 4 * 64

    def test_fits_in_64_bits(self):
        for index in range(100):
            assert 0 <= derive_seed(2**63, index) < 2**64


class TestRunCells:
    def test_serial_runs_in_order(self):
        seen = []

        def worker(cell):
            seen.append(cell)
            return cell * 2

        assert run_cells(worker, [1, 2, 3], parallel=1) == [2, 4, 6]
        assert seen == [1, 2, 3]

    def test_empty_cells(self):
        assert run_cells(math.factorial, [], parallel=2) == []

    def test_single_cell_stays_serial(self):
        # A lambda is not picklable; one cell must never hit the pool.
        assert run_cells(lambda cell: cell + 1, [41], parallel=8) == [42]

    def test_parallel_results_ordered_and_equal_to_serial(self):
        cells = list(range(10))
        serial = run_cells(math.factorial, cells, parallel=1)
        parallel = run_cells(math.factorial, cells, parallel=2)
        assert parallel == serial == [math.factorial(n) for n in cells]

    def test_env_var_drives_pool(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "2")
        assert run_cells(math.factorial, [3, 4, 5]) == [6, 24, 120]


class TestExperimentEquality:
    """Parallel and serial sweeps must produce identical exhibits."""

    def test_f6_parallel_equals_serial(self):
        from repro.core.experiments import experiment_f6_reconfig_scale

        serial = experiment_f6_reconfig_scale(seed=0, quick=True, parallel=1)
        parallel = experiment_f6_reconfig_scale(seed=0, quick=True, parallel=2)
        assert parallel.render() == serial.render()

    def test_run_experiment_passes_parallel_through(self):
        from repro.core.experiments import run_experiment

        serial = run_experiment("R-F6", seed=0, quick=True)
        parallel = run_experiment("R-F6", seed=0, quick=True, parallel=2)
        assert parallel.render() == serial.render()

    def test_single_cell_experiments_ignore_parallel(self):
        from repro.core.experiments import run_experiment

        result = run_experiment("R-T1", seed=0, quick=True, parallel=2)
        assert result.exp_id == "R-T1"
