"""Tests for the sensitivity-sweep harness."""

import pytest

from repro.core import sweep
from repro.core.sensitivity import _apply


class TestApply:
    def test_costs_field(self):
        costs, config = _apply("costs.db_write_s", 0.1)
        assert costs.db_write_s == 0.1
        assert config.cpu_workers == 4  # untouched default

    def test_config_field(self):
        costs, config = _apply("config.cpu_workers", 8)
        assert config.cpu_workers == 8
        assert costs.db_write_s == 0.04

    def test_unknown_namespace(self):
        with pytest.raises(ValueError, match="unknown namespace"):
            _apply("knobs.cpu_workers", 8)

    def test_unknown_field(self):
        with pytest.raises(ValueError, match="unknown config field"):
            _apply("config.flux_capacitor", 8)
        with pytest.raises(ValueError, match="unknown costs field"):
            _apply("costs.flux_capacitor", 8)

    def test_malformed_parameter(self):
        with pytest.raises(ValueError, match="costs.<field>"):
            _apply("cpu_workers", 8)


class TestSweep:
    def test_cpu_workers_sweep_improves_throughput(self):
        result = sweep(
            "config.cpu_workers", [2, 8], seed=1, total=24, concurrency=16, hosts=8
        )
        throughputs = [float(row[1]) for row in result.rows]
        assert throughputs[1] > throughputs[0]
        assert result.rows[0][2] == "1.00x"
        assert "cpu_workers" in result.title

    def test_irrelevant_knob_is_flat(self):
        result = sweep(
            "config.copy_slots_per_datastore",
            [2, 16],
            seed=1,
            total=24,
            concurrency=16,
            hosts=8,
        )
        throughputs = [float(row[1]) for row in result.rows]
        assert throughputs[1] == pytest.approx(throughputs[0], rel=0.15)

    def test_costs_sweep_slows_down(self):
        result = sweep(
            "costs.placement_s", [0.6, 6.0], seed=1, total=24, concurrency=16, hosts=8
        )
        throughputs = [float(row[1]) for row in result.rows]
        assert throughputs[1] < throughputs[0]

    def test_series_present_for_numeric_values(self):
        result = sweep("config.cpu_workers", [2, 4], seed=1, total=12, concurrency=8, hosts=4)
        assert "clones/hour" in result.series
        assert len(result.series["clones/hour"]) == 2

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            sweep("config.cpu_workers", [])


def test_cli_sweep_command(capsys):
    from repro.cli import main

    assert (
        main(["sweep", "config.cpu_workers", "2,4", "--clones", "12"]) == 0
    )
    out = capsys.readouterr().out
    assert "SWEEP:config.cpu_workers" in out


def test_cli_sweep_bad_parameter(capsys):
    from repro.cli import main

    assert main(["sweep", "bogus", "1,2"]) == 2
