"""End-to-end triage chaos points: detection, honesty, determinism."""

import random

import pytest

from repro.triage.harness import (
    QUICK_KINDS,
    SWEEP_KINDS,
    kind_schedule,
    run_triage_point,
)


class TestKindSchedule:
    def test_every_sweep_kind_has_a_schedule(self):
        rng = random.Random(7)
        for kind in SWEEP_KINDS:
            schedule = kind_schedule(kind, rng, 600.0)
            assert len(schedule.specs) == 1
            assert schedule.specs[0].kind == kind

    def test_none_means_no_faults(self):
        assert not kind_schedule(None, random.Random(7), 600.0).specs

    def test_deterministic_per_seed(self):
        a = kind_schedule("agent_degrade", random.Random(11), 600.0).specs[0]
        b = kind_schedule("agent_degrade", random.Random(11), 600.0).specs[0]
        assert a == b

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            kind_schedule("disk_fire", random.Random(7), 600.0)

    def test_quick_kinds_are_a_subset(self):
        assert set(QUICK_KINDS) <= set(SWEEP_KINDS)


class TestRunTriagePoint:
    def test_detects_a_server_crash(self):
        point = run_triage_point(seed=5, kind="server_crash", duration_s=420.0)
        assert point.completed > 0
        assert point.scrapes > 10
        assert point.alerts >= 1
        assert len(point.manifest) == 1
        assert point.manifest.windows[0].kind == "server_crash"
        assert any(v.named_kind == "server_crash" for v in point.verdicts)
        assert point.report.per_kind["server_crash"].recall == 1.0
        assert point.ok

    def test_no_fault_run_stays_honest(self):
        point = run_triage_point(seed=1, kind=None, duration_s=420.0)
        assert point.completed > 0
        assert len(point.manifest) == 0
        # A clean run may alert (it should not), but it must never name
        # a culprit — that is the honesty property `ok` encodes.
        assert all(not v.confident for v in point.verdicts)
        assert point.ok
        assert point.report.total_verdicts == len(point.verdicts)

    def test_same_seed_reproduces_verdicts(self):
        first = run_triage_point(seed=5, kind="server_crash", duration_s=420.0)
        second = run_triage_point(seed=5, kind="server_crash", duration_s=420.0)
        assert [v.render() for v in first.verdicts] == [
            v.render() for v in second.verdicts
        ]
        assert first.manifest.to_dicts() == second.manifest.to_dicts()

    def test_triage_off_records_nothing(self):
        point = run_triage_point(
            seed=5, kind="server_crash", duration_s=420.0, triage=False
        )
        assert point.verdicts == []
        assert point.alerts >= 1  # alerts still fire; nobody listens
