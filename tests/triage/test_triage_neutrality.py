"""Triage neutrality: the engine must observe without perturbing.

The differential ISSUE demands: run the same seeded faulted storm with
triage attached and with :data:`NULL_TRIAGE`, and require the *task
schedules* — every task's submit/start/finish time, state, and attempt
count — to be identical. The engine runs inside the scraper's evaluate
step and reads only roll-ups and spans, so no workload event may shift.
"""

from repro.core.experiments import StormRig
from repro.faults.injector import FaultInjector, FaultTargets
from repro.faults.schedule import standard_fault_schedule
from repro.telemetry.slo import AvailabilityRule, BurnWindow, RatioRule
from repro.triage.engine import NULL_TRIAGE


def schedule_of(rig):
    return [
        (
            task.task_id,
            task.op_type,
            task.submitted_at,
            task.started_at,
            task.finished_at,
            task.state.name,
            task.attempts,
        )
        for task in rig.server.tasks.tasks
    ]


def run_storm(triage: bool):
    rig = StormRig(
        seed=3,
        hosts=8,
        datastores=2,
        telemetry=True,
        scrape_interval_s=0.5,
        triage=triage,
    )
    # Identical monitor config either way; only the attached listener
    # differs. The flap takes 2/8 hosts down, so the availability rule
    # burns hard and the triage-on run demonstrably does real work.
    windows = (BurnWindow(short_s=15.0, long_s=60.0, threshold=1.0),)
    rig.telemetry.add_rule(
        AvailabilityRule(
            name="host-availability",
            objective=0.99,
            metric_prefix="host_up",
            windows=windows,
        )
    )
    rig.telemetry.add_rule(
        RatioRule(
            name="task-goodput",
            objective=0.98,
            bad_metric='tasks_completed_total{outcome="error"}',
            total_metrics=(
                'tasks_completed_total{outcome="success"}',
                'tasks_completed_total{outcome="error"}',
            ),
            windows=windows,
        )
    )
    rig.telemetry.start()
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(rig.server),
        standard_fault_schedule(600.0),
        rng=rig.streams.stream("fault-injector"),
    ).start()
    summary = rig.closed_loop_storm(total=48, concurrency=12, linked=True)
    rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))
    return rig, summary


def test_task_schedule_identical_with_and_without_triage():
    rig_off, summary_off = run_storm(triage=False)
    rig_on, summary_on = run_storm(triage=True)

    assert schedule_of(rig_on) == schedule_of(rig_off)
    assert summary_on == summary_off
    # The triage run actually fired and triaged — not a vacuous diff.
    assert rig_off.triage is NULL_TRIAGE
    assert not rig_off.triage.verdicts
    fired = [e for e in rig_on.telemetry.monitor.timeline if e.kind == "fire"]
    assert fired
    assert rig_on.triage.verdicts
    # And the alert timelines themselves agree: triage read, never wrote.
    assert [
        (e.rule, e.kind, e.time) for e in rig_on.telemetry.monitor.timeline
    ] == [(e.rule, e.kind, e.time) for e in rig_off.telemetry.monitor.timeline]
