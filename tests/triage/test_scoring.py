"""TriageScorer: verdicts vs ground truth — matching, confusion, merge.

Covers the triage edge cases: overlapping fault windows, honest "none"
verdicts (never counted against precision), trailing grace, and recall
credited at most once per injected window.
"""

import pytest

from repro.faults.manifest import GroundTruthManifest, GroundTruthWindow
from repro.triage.engine import NO_CULPRIT, Verdict
from repro.triage.evidence import Hypothesis
from repro.triage.scoring import NO_FAULT_ROW, TriageScorer


def verdict(at, kind, confidence=0.9):
    return Verdict(
        fired_at=at,
        alerts=["slo"],
        hypotheses=(Hypothesis(kind=kind, resource="r", phase="p",
                               confidence=confidence),),
    )


def window(kind, start, end):
    return GroundTruthWindow(kind=kind, start_s=start, end_s=end)


def manifest(*windows):
    return GroundTruthManifest(windows)


class TestMatching:
    def test_correct_top1(self):
        report = TriageScorer().score(
            [verdict(150.0, "host_flap")], manifest(window("host_flap", 100, 200))
        )
        assert report.top1_accuracy == 1.0
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.confusion == {"host_flap": {"host_flap": 1}}

    def test_wrong_name_lands_in_off_diagonal(self):
        report = TriageScorer().score(
            [verdict(150.0, "db_slowdown")], manifest(window("host_flap", 100, 200))
        )
        assert report.top1_accuracy == 0.0
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.confusion == {"host_flap": {"db_slowdown": 1}}

    def test_trailing_grace(self):
        truth = manifest(window("host_flap", 100, 200))
        scorer = TriageScorer(grace_s=60.0)
        assert scorer.score([verdict(250.0, "host_flap")], truth).top1_accuracy == 1.0
        late = scorer.score([verdict(300.0, "host_flap")], truth)
        assert late.matched_verdicts == 0
        assert late.unmatched_verdicts == 1

    def test_grace_must_be_non_negative(self):
        with pytest.raises(ValueError):
            TriageScorer(grace_s=-1.0)


class TestNoCulprit:
    def test_honest_none_outside_windows_is_a_correct_rejection(self):
        report = TriageScorer().score(
            [verdict(50.0, NO_CULPRIT)], manifest(window("host_flap", 500, 600))
        )
        assert report.correct_rejections == 1
        assert report.precision == 0.0  # nothing named, nothing penalized
        assert report.confusion == {NO_FAULT_ROW: {NO_CULPRIT: 1}}

    def test_none_during_a_window_is_a_miss_not_a_false_name(self):
        report = TriageScorer().score(
            [verdict(150.0, NO_CULPRIT)], manifest(window("host_flap", 100, 200))
        )
        assert report.matched_verdicts == 1
        assert report.top1_accuracy == 0.0
        assert report.confusion == {"host_flap": {NO_CULPRIT: 1}}
        # No kind was *named*, so per-kind precision is untouched.
        assert report.per_kind["host_flap"].named == 0

    def test_false_name_outside_windows_hurts_precision(self):
        report = TriageScorer().score(
            [verdict(50.0, "db_slowdown")], manifest(window("host_flap", 500, 600))
        )
        assert report.per_kind["db_slowdown"].named == 1
        assert report.per_kind["db_slowdown"].precision == 0.0


class TestOverlappingWindows:
    def test_either_overlapping_kind_is_a_correct_top1(self):
        truth = manifest(
            window("host_flap", 100, 300), window("db_slowdown", 150, 400)
        )
        report = TriageScorer().score([verdict(200.0, "db_slowdown")], truth)
        assert report.top1_accuracy == 1.0
        assert report.per_kind["db_slowdown"].recall == 1.0
        assert report.per_kind["host_flap"].recall == 0.0  # not credited
        assert report.confusion == {"db_slowdown": {"db_slowdown": 1}}

    def test_recall_credits_each_window_once(self):
        truth = manifest(window("host_flap", 100, 300))
        report = TriageScorer().score(
            [verdict(150.0, "host_flap"), verdict(250.0, "host_flap")], truth
        )
        assert report.per_kind["host_flap"].recalled == 1
        assert report.per_kind["host_flap"].named_correct == 2

    def test_two_windows_of_same_kind_need_two_credits(self):
        truth = manifest(
            window("host_flap", 100, 200), window("host_flap", 400, 500)
        )
        report = TriageScorer().score([verdict(150.0, "host_flap")], truth)
        assert report.per_kind["host_flap"].recall == pytest.approx(0.5)


class TestReport:
    def test_merge_pools_counts(self):
        truth = manifest(window("host_flap", 100, 200))
        scorer = TriageScorer()
        a = scorer.score([verdict(150.0, "host_flap")], truth)
        b = scorer.score([verdict(150.0, "db_slowdown")], truth)
        merged = TriageScorer.merge([a, b])
        assert merged.total_verdicts == 2
        assert merged.per_kind["host_flap"].injected == 2
        assert merged.top1_accuracy == pytest.approx(0.5)
        assert merged.confusion["host_flap"] == {"host_flap": 1, "db_slowdown": 1}

    def test_to_dict_and_render_cover_everything(self):
        truth = manifest(window("host_flap", 100, 200))
        report = TriageScorer().score(
            [verdict(150.0, "host_flap"), verdict(900.0, NO_CULPRIT)], truth
        )
        as_dict = report.to_dict()
        assert as_dict["top1_accuracy"] == 1.0
        assert as_dict["correct_rejections"] == 1
        assert as_dict["per_kind"]["host_flap"]["recall"] == 1.0
        text = "\n".join(report.render())
        assert "confusion matrix" in text
        assert "host_flap" in text

    def test_render_confusion_empty(self):
        report = TriageScorer().score([], manifest())
        assert report.render_confusion() == ["confusion matrix: (no verdicts)"]
