"""TriageEngine: alert wiring, ranking, refractory refinement, null path."""

import types

import pytest

from repro.sim.kernel import Simulator
from repro.telemetry.metrics import Telemetry
from repro.triage.engine import NO_CULPRIT, NULL_TRIAGE, TriageEngine
from repro.triage.rules import TriageRule


def alert(rule="deploy-latency-p99"):
    return types.SimpleNamespace(rule=rule)


class DialRule(TriageRule):
    """Confidence read off a mutable dial, for refinement tests."""

    name = "dial"
    kind = "dial_kind"

    def __init__(self, dial):
        self.dial = dial

    def evaluate(self, ctx):
        if not self.dial[0]:
            return None
        return self._hypothesis("r", self.dial[0], ())


@pytest.fixture
def telemetry():
    return Telemetry(Simulator(), scrape_interval_s=5.0)


class TestTriageNow:
    def test_no_culprit_on_empty_telemetry(self, telemetry):
        engine = TriageEngine(telemetry)
        verdict = engine.triage_now(600.0, alerts=("task-goodput",))
        assert verdict.named_kind == NO_CULPRIT
        assert not verdict.confident
        assert verdict.top.confidence == pytest.approx(0.2)
        assert verdict.alerts == ["task-goodput"]

    def test_names_a_clear_signal(self, telemetry):
        telemetry.rollup("server_crashed", "gauge").record(550.0, 1.0)
        verdict = TriageEngine(telemetry).triage_now(600.0)
        assert verdict.named_kind == "server_crash"
        assert verdict.confident

    def test_ranked_by_confidence_and_capped(self, telemetry):
        dials = [[0.5], [0.9], [0.7]]
        engine = TriageEngine(
            telemetry, rules=[DialRule(d) for d in dials], max_hypotheses=2
        )
        verdict = engine.triage_now(600.0)
        assert [h.confidence for h in verdict.hypotheses] == [0.9, 0.7]

    def test_weak_evidence_leads_with_none(self, telemetry):
        engine = TriageEngine(telemetry, rules=[DialRule([0.3])])
        verdict = engine.triage_now(600.0)
        assert verdict.named_kind == NO_CULPRIT
        # The weak hypothesis survives below the no-culprit headline.
        assert [h.kind for h in verdict.hypotheses] == [NO_CULPRIT, "dial_kind"]

    def test_deterministic_for_identical_state(self, telemetry):
        telemetry.rollup('host_up{host="esx01"}', "gauge").record(550.0, 0.0)
        first = TriageEngine(telemetry).triage_now(600.0, alerts=("a",))
        second = TriageEngine(telemetry).triage_now(600.0, alerts=("a",))
        assert first.render() == second.render()


class TestAlertWiring:
    def test_attach_subscribes_to_monitor(self, telemetry):
        engine = TriageEngine(telemetry)
        assert engine.attach() is engine
        assert engine._on_alert in telemetry.monitor.listeners

    def test_each_distinct_incident_gets_a_verdict(self, telemetry):
        engine = TriageEngine(telemetry, rules=[])
        engine._on_alert(alert("a"), 100.0)
        engine._on_alert(alert("b"), 300.0)
        assert len(engine.verdicts) == 2


class TestRefractoryRefinement:
    def test_burst_refines_in_place_and_merges_alerts(self, telemetry):
        dial = [0.0]
        engine = TriageEngine(telemetry, rules=[DialRule(dial)], refractory_s=60.0)
        engine._on_alert(alert("a"), 100.0)  # evidence not there yet
        assert engine.verdicts[-1].named_kind == NO_CULPRIT
        dial[0] = 0.9
        engine._on_alert(alert("b"), 130.0)  # same incident, better window
        assert len(engine.verdicts) == 1
        verdict = engine.verdicts[0]
        assert verdict.named_kind == "dial_kind"
        assert verdict.alerts == ["a", "b"]

    def test_refinement_never_downgrades(self, telemetry):
        dial = [0.9]
        engine = TriageEngine(telemetry, rules=[DialRule(dial)], refractory_s=60.0)
        engine._on_alert(alert("a"), 100.0)
        dial[0] = 0.5
        engine._on_alert(alert("b"), 130.0)
        assert len(engine.verdicts) == 1
        assert engine.verdicts[0].top.confidence == pytest.approx(0.9)
        assert engine.verdicts[0].alerts == ["a", "b"]  # alerts still merged

    def test_alert_after_refractory_opens_new_incident(self, telemetry):
        dial = [0.9]
        engine = TriageEngine(telemetry, rules=[DialRule(dial)], refractory_s=60.0)
        engine._on_alert(alert("a"), 100.0)
        engine._on_alert(alert("a"), 200.0)
        assert len(engine.verdicts) == 2


class TestNullTriage:
    def test_null_engine_is_inert(self):
        assert NULL_TRIAGE.is_null
        assert NULL_TRIAGE.attach() is NULL_TRIAGE
        assert NULL_TRIAGE.verdicts == ()
        assert NULL_TRIAGE.render() == []
        verdict = NULL_TRIAGE.triage_now(10.0, alerts=("a",))
        assert verdict.named_kind == NO_CULPRIT
