"""Each triage rule fires on its synthetic signature and stays silent
otherwise.

Signals are hand-fed into roll-ups the way the scraper would land them
(counters as per-scrape deltas, probes as levels). Roll-up windows are
60 s-bucket granular, so "recent" samples sit at t >= 420 and baseline
samples at t <= 419 for a context at now=600 with a 180 s lookback.
"""

import pytest

from repro.sim.kernel import Simulator
from repro.telemetry.metrics import Telemetry
from repro.triage.evidence import EvidenceContext
from repro.triage.rules import (
    AgentDegradeRule,
    CopyFlakinessRule,
    DatastoreOutageRule,
    DbSlowdownRule,
    HostFlapRule,
    HotShardRule,
    MessageDelayRule,
    MessageDropRule,
    MessageDuplicateRule,
    MessageReorderRule,
    ServerCrashRule,
    ShardCrashRule,
    TopicPartitionRule,
    default_rules,
)

NOW = 600.0


@pytest.fixture
def telemetry():
    return Telemetry(Simulator(), scrape_interval_s=5.0)


def ctx(telemetry):
    return EvidenceContext(telemetry, now=NOW, lookback_s=180.0, baseline_s=420.0)


def feed(telemetry, metric_id, kind, samples):
    series = telemetry.rollup(metric_id, kind)
    for t, v in samples:
        series.record(t, v)
    return series


class TestSilentOnEmptyTelemetry:
    def test_no_rule_fires_without_signals(self, telemetry):
        context = ctx(telemetry)
        for rule in default_rules():
            assert rule.evaluate(context) is None, rule.name


class TestServerCrash:
    def test_fires_on_crash_probe(self, telemetry):
        feed(telemetry, "server_crashed", "gauge", [(430.0, 0.0), (550.0, 1.0)])
        hypothesis = ServerCrashRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "server_crash"
        assert hypothesis.confidence == pytest.approx(0.95)

    def test_recovery_backlog_raises_confidence(self, telemetry):
        feed(telemetry, "server_crashed", "gauge", [(550.0, 1.0)])
        feed(telemetry, "recovery_parked", "gauge", [(560.0, 3.0)])
        hypothesis = ServerCrashRule().evaluate(ctx(telemetry))
        assert hypothesis.confidence == pytest.approx(0.97)
        assert len(hypothesis.evidence) == 2

    def test_silent_when_probe_stays_zero(self, telemetry):
        feed(telemetry, "server_crashed", "gauge", [(550.0, 0.0)])
        assert ServerCrashRule().evaluate(ctx(telemetry)) is None


class TestShardCrash:
    def test_fires_on_blocked_submissions(self, telemetry):
        feed(telemetry, "server_blocked", "gauge", [(550.0, 1.0)])
        hypothesis = ShardCrashRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "shard_crash"
        assert hypothesis.resource == "server"

    def test_yields_to_real_crash(self, telemetry):
        feed(telemetry, "server_blocked", "gauge", [(550.0, 1.0)])
        feed(telemetry, "server_crashed", "gauge", [(550.0, 1.0)])
        assert ShardCrashRule().evaluate(ctx(telemetry)) is None


class TestHostFlap:
    def test_names_only_hosts_that_dipped(self, telemetry):
        feed(telemetry, 'host_up{host="esx01"}', "gauge",
             [(430.0, 1.0), (500.0, 0.0)])
        feed(telemetry, 'host_up{host="esx02"}', "gauge",
             [(430.0, 1.0), (500.0, 1.0)])
        hypothesis = HostFlapRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "host_flap"
        assert hypothesis.resource == "esx01"

    def test_silent_when_fleet_healthy(self, telemetry):
        feed(telemetry, 'host_up{host="esx01"}', "gauge", [(500.0, 1.0)])
        assert HostFlapRule().evaluate(ctx(telemetry)) is None


class TestAgentDegrade:
    def fail_id(self, host):
        return f'vc-1.hostd.{host}.call_failures{{host="{host}"}}'

    def test_fires_on_failure_surge(self, telemetry):
        feed(telemetry, self.fail_id("esx03"), "counter",
             [(430.0, 2.0), (500.0, 4.0)])
        feed(telemetry, 'host_up{host="esx03"}', "gauge", [(500.0, 1.0)])
        hypothesis = AgentDegradeRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "agent_degrade"
        assert hypothesis.resource == "esx03"

    def test_breaker_trip_boosts_confidence(self, telemetry):
        feed(telemetry, self.fail_id("esx03"), "counter", [(500.0, 6.0)])
        base = AgentDegradeRule().evaluate(ctx(telemetry)).confidence
        feed(telemetry, 'hostd_breaker_state{host="esx03"}', "gauge",
             [(510.0, 2.0)])
        boosted = AgentDegradeRule().evaluate(ctx(telemetry)).confidence
        assert boosted == pytest.approx(base + 0.07)

    def test_down_hosts_are_not_blamed(self, telemetry):
        # The flap rule owns hosts that disconnected; their hostd errors
        # are a symptom, not a degradation.
        feed(telemetry, self.fail_id("esx03"), "counter", [(500.0, 6.0)])
        feed(telemetry, 'host_up{host="esx03"}', "gauge",
             [(430.0, 1.0), (500.0, 0.0)])
        assert AgentDegradeRule().evaluate(ctx(telemetry)) is None

    def test_steady_error_rate_is_baseline(self, telemetry):
        # Same per-window error rate before and during the lookback: no
        # surge, no hypothesis.
        samples = [(float(t), 3.0) for t in range(30, 600, 60)]
        feed(telemetry, self.fail_id("esx03"), "counter", samples)
        assert AgentDegradeRule().evaluate(ctx(telemetry)) is None


class TestDbSlowdown:
    def feed_latency(self, telemetry, base_mean, recent_mean):
        feed(telemetry, "vc-1.db.writes_latency:count", "counter",
             [(100.0, 4.0), (220.0, 4.0), (340.0, 4.0), (500.0, 10.0)])
        feed(telemetry, "vc-1.db.writes_latency:seconds", "counter",
             [(100.0, 4 * base_mean), (220.0, 4 * base_mean),
              (340.0, 4 * base_mean), (500.0, 10 * recent_mean)])

    def test_fires_on_latency_ratio(self, telemetry):
        self.feed_latency(telemetry, base_mean=0.05, recent_mean=0.5)
        hypothesis = DbSlowdownRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "db_slowdown"
        assert hypothesis.resource == "database"

    def test_silent_below_ratio(self, telemetry):
        self.feed_latency(telemetry, base_mean=0.05, recent_mean=0.1)
        assert DbSlowdownRule().evaluate(ctx(telemetry)) is None

    def test_pool_queue_boosts_confidence(self, telemetry):
        self.feed_latency(telemetry, base_mean=0.05, recent_mean=0.5)
        base = DbSlowdownRule().evaluate(ctx(telemetry)).confidence
        feed(telemetry, "db_pool_queue", "gauge", [(500.0, 4.0)])
        boosted = DbSlowdownRule().evaluate(ctx(telemetry)).confidence
        assert boosted == pytest.approx(base + 0.08)


class TestDatastoreOutage:
    def test_dead_datastore_named_healthy_peer_corroborates(self, telemetry):
        feed(telemetry, "vc-1.copy.attempts.lun01", "counter", [(500.0, 5.0)])
        feed(telemetry, "vc-1.copy.failures.lun01", "counter", [(500.0, 5.0)])
        feed(telemetry, "vc-1.copy.attempts.lun00", "counter", [(500.0, 6.0)])
        hypothesis = DatastoreOutageRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "datastore_outage"
        assert hypothesis.resource == "lun01"
        assert hypothesis.confidence == pytest.approx(0.85)

    def test_fast_window_sees_through_pre_outage_successes(self, telemetry):
        # Long lookback: 5/20 failures (diluted). Last 60 s: 4/4.
        feed(telemetry, "vc-1.copy.attempts.lun01", "counter",
             [(430.0, 16.0), (560.0, 4.0)])
        feed(telemetry, "vc-1.copy.failures.lun01", "counter",
             [(430.0, 1.0), (560.0, 4.0)])
        hypothesis = DatastoreOutageRule().evaluate(ctx(telemetry))
        assert hypothesis is not None
        assert hypothesis.resource == "lun01"

    def test_silent_on_partial_failures(self, telemetry):
        feed(telemetry, "vc-1.copy.attempts.lun01", "counter", [(500.0, 10.0)])
        feed(telemetry, "vc-1.copy.failures.lun01", "counter", [(500.0, 3.0)])
        assert DatastoreOutageRule().evaluate(ctx(telemetry)) is None


class TestCopyFlakiness:
    def test_fires_on_spread_partial_failures(self, telemetry):
        for ds, attempts, failures in (("lun00", 10.0, 3.0), ("lun01", 8.0, 2.0)):
            feed(telemetry, f"vc-1.copy.attempts.{ds}", "counter",
                 [(500.0, attempts)])
            feed(telemetry, f"vc-1.copy.failures.{ds}", "counter",
                 [(500.0, failures)])
        hypothesis = CopyFlakinessRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "copy_flakiness"
        assert hypothesis.resource == "copy-engine"

    def test_single_dead_datastore_is_not_flakiness(self, telemetry):
        feed(telemetry, "vc-1.copy.attempts.lun01", "counter", [(500.0, 5.0)])
        feed(telemetry, "vc-1.copy.failures.lun01", "counter", [(500.0, 5.0)])
        assert CopyFlakinessRule().evaluate(ctx(telemetry)) is None


class TestMessageDrop:
    def test_fires_and_localizes_topic(self, telemetry):
        feed(telemetry, 'bus_dropped_total{bus="bus"}', "counter",
             [(480.0, 3.0), (520.0, 2.0)])
        feed(telemetry, 'bus_topic_dropped{topic="tasks"}', "gauge",
             [(430.0, 0.0), (520.0, 5.0)])
        hypothesis = MessageDropRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "message_drop"
        assert hypothesis.resource == "tasks"

    def test_silent_on_single_drop(self, telemetry):
        feed(telemetry, 'bus_dropped_total{bus="bus"}', "counter",
             [(520.0, 1.0)])
        assert MessageDropRule().evaluate(ctx(telemetry)) is None


class TestMessageCounterRules:
    def test_duplicate_delay_reorder(self, telemetry):
        for field, rule, kind in (
            ("duplicated", MessageDuplicateRule(), "message_duplicate"),
            ("delayed", MessageDelayRule(), "message_delay"),
            ("reordered", MessageReorderRule(), "message_reorder"),
        ):
            feed(telemetry, f'bus_topic_{field}{{topic="events"}}', "gauge",
                 [(430.0, 0.0), (520.0, 6.0)])
            hypothesis = rule.evaluate(ctx(telemetry))
            assert hypothesis.kind == kind
            assert hypothesis.resource == "events"


class TestTopicPartition:
    def stall(self, telemetry):
        feed(telemetry, 'bus_topic_published{topic="tasks"}', "gauge",
             [(430.0, 10.0), (550.0, 20.0)])
        feed(telemetry, 'bus_topic_delivered{topic="tasks"}', "gauge",
             [(430.0, 10.0), (550.0, 12.0)])
        feed(telemetry, 'bus_queue_depth{topic="tasks"}', "gauge",
             [(550.0, 8.0)])

    def test_fires_on_stalled_topic(self, telemetry):
        self.stall(telemetry)
        hypothesis = TopicPartitionRule().evaluate(ctx(telemetry))
        assert hypothesis.kind == "topic_partition"
        assert hypothesis.resource == "tasks"

    def test_gated_by_drop_and_delay_counters(self, telemetry):
        self.stall(telemetry)
        feed(telemetry, 'bus_dropped_total{bus="bus"}', "counter",
             [(520.0, 2.0)])
        assert TopicPartitionRule().evaluate(ctx(telemetry)) is None

    def test_healed_signature_from_queue_wait_tail(self, telemetry):
        feed(telemetry, 'bus_queue_wait_s{bus="bus"}', "histogram",
             [(540.0, 25.0), (545.0, 32.0)])
        hypothesis = TopicPartitionRule().evaluate(ctx(telemetry))
        assert hypothesis is not None
        assert hypothesis.resource == "bus"


class TestCatalogue:
    def test_unique_kinds_and_metadata(self):
        rules = default_rules()
        kinds = [rule.kind for rule in rules]
        assert len(kinds) == len(set(kinds))
        for rule in rules:
            assert rule.summary, rule.name
            assert rule.name != "abstract"


class TestHotShard:
    def fire(self, telemetry):
        feed(telemetry, 'federation_spills{shard="vc-1"}', "gauge",
             [(430.0, 0.0), (500.0, 2.0), (550.0, 5.0)])
        feed(telemetry, 'federation_spills{shard="vc-2"}', "gauge",
             [(430.0, 0.0), (550.0, 0.0)])
        feed(telemetry, 'federation_steals{shard="vc-2"}', "gauge",
             [(430.0, 0.0), (550.0, 4.0)])

    def test_fires_on_spillover_absorbed_by_steals(self, telemetry):
        self.fire(telemetry)
        hypothesis = HotShardRule().evaluate(ctx(telemetry))
        assert hypothesis is not None
        assert hypothesis.kind == "hot_shard"
        assert hypothesis.resource == "vc-1"
        assert hypothesis.confidence > 0.6

    def test_silent_without_steals(self, telemetry):
        # Spillover with nobody stealing is backpressure, not a hot shard.
        feed(telemetry, 'federation_spills{shard="vc-1"}', "gauge",
             [(430.0, 0.0), (550.0, 5.0)])
        assert HotShardRule().evaluate(ctx(telemetry)) is None

    def test_silent_below_spill_threshold(self, telemetry):
        feed(telemetry, 'federation_spills{shard="vc-1"}', "gauge",
             [(430.0, 0.0), (550.0, 1.0)])
        feed(telemetry, 'federation_steals{shard="vc-2"}', "gauge",
             [(430.0, 0.0), (550.0, 1.0)])
        assert HotShardRule().evaluate(ctx(telemetry)) is None

    def test_queue_imbalance_boosts_confidence(self, telemetry):
        self.fire(telemetry)
        base = HotShardRule().evaluate(ctx(telemetry)).confidence
        feed(telemetry, 'tasks_queue_depth{shard="vc-1"}', "gauge",
             [(500.0, 8.0), (550.0, 9.0)])
        feed(telemetry, 'tasks_queue_depth{shard="vc-2"}', "gauge",
             [(500.0, 0.0), (550.0, 0.0)])
        boosted = HotShardRule().evaluate(ctx(telemetry)).confidence
        assert boosted > base
