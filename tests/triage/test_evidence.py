"""EvidenceContext window arithmetic against hand-fed roll-ups."""

import pytest

from repro.sim.kernel import Simulator
from repro.telemetry.metrics import Telemetry
from repro.triage.evidence import EvidenceContext, Hypothesis, parse_metric_id


@pytest.fixture
def telemetry():
    return Telemetry(Simulator(), scrape_interval_s=5.0)


def ctx_at(telemetry, now, lookback_s=60.0, baseline_s=120.0):
    return EvidenceContext(
        telemetry, now=now, lookback_s=lookback_s, baseline_s=baseline_s
    )


class TestParseMetricId:
    def test_plain_name(self):
        assert parse_metric_id("tasks_total") == ("tasks_total", {})

    def test_labels(self):
        name, labels = parse_metric_id('host_up{host="esx01",zone="a"}')
        assert name == "host_up"
        assert labels == {"host": "esx01", "zone": "a"}

    def test_registry_prefixed_name(self):
        name, labels = parse_metric_id('vc-1.hostd.host-3.timeouts{host="esx02"}')
        assert name == "vc-1.hostd.host-3.timeouts"
        assert labels == {"host": "esx02"}


class TestHypothesis:
    def test_confidence_clamped(self):
        assert Hypothesis("k", "r", "p", 1.7).confidence == 1.0
        assert Hypothesis("k", "r", "p", -0.2).confidence == 0.0


class TestWindows:
    def test_recent_sum_counts_lookback_only(self, telemetry):
        # Roll-ups are 60 s-bucket granular: the lookback covers every
        # level-0 window overlapping [now - lookback, now].
        series = telemetry.rollup("errors_total", "counter")
        for t, v in [(10.0, 1.0), (70.0, 2.0), (130.0, 4.0)]:
            series.record(t, v)
        ctx = ctx_at(telemetry, now=150.0, lookback_s=60.0)
        assert ctx.recent_sum("errors_total") == pytest.approx(6.0)

    def test_recent_sum_shorter_window(self, telemetry):
        series = telemetry.rollup("errors_total", "counter")
        for t, v in [(50.0, 2.0), (85.0, 4.0)]:
            series.record(t, v)
        ctx = ctx_at(telemetry, now=90.0, lookback_s=60.0)
        assert ctx.recent_sum("errors_total", seconds=10.0) == pytest.approx(4.0)

    def test_baseline_rate_excludes_lookback(self, telemetry):
        series = telemetry.rollup("errors_total", "counter")
        series.record(30.0, 12.0)  # baseline era: [second 0, 60)
        series.record(80.0, 100.0)  # lookback era
        ctx = ctx_at(telemetry, now=120.0, lookback_s=60.0, baseline_s=60.0)
        assert ctx.recent_sum("errors_total") == pytest.approx(100.0)
        assert ctx.baseline_rate("errors_total") == pytest.approx(12.0 / 60.0)

    def test_gauge_mean_and_min(self, telemetry):
        series = telemetry.rollup("host_up", "gauge")
        for t, v in [(70.0, 1.0), (80.0, 0.0), (90.0, 0.0)]:
            series.record(t, v)
        ctx = ctx_at(telemetry, now=95.0, lookback_s=60.0)
        assert ctx.recent_mean("host_up") == pytest.approx(1.0 / 3.0)
        assert ctx.recent_min("host_up") == 0.0
        assert ctx.recent_max("host_up") == 1.0

    def test_recent_min_none_when_empty(self, telemetry):
        telemetry.rollup("host_up", "gauge").record(5.0, 1.0)
        ctx = ctx_at(telemetry, now=500.0, lookback_s=60.0)
        assert ctx.recent_min("host_up") is None
        assert ctx.recent_max("host_up") == 0.0

    def test_increase_of_cumulative_probe(self, telemetry):
        series = telemetry.rollup("bus_topic_published", "gauge")
        for t, v in [(60.0, 10.0), (75.0, 14.0), (90.0, 21.0)]:
            series.record(t, v)
        ctx = ctx_at(telemetry, now=95.0, lookback_s=60.0)
        assert ctx.increase("bus_topic_published") == pytest.approx(11.0)

    def test_increase_empty_window_is_zero(self, telemetry):
        telemetry.rollup("bus_topic_published", "gauge")
        ctx = ctx_at(telemetry, now=95.0)
        assert ctx.increase("bus_topic_published") == 0.0


class TestFind:
    def test_find_by_name_and_labels(self, telemetry):
        for host in ("esx02", "esx01"):
            telemetry.rollup(f'host_up{{host="{host}"}}', "gauge").record(1.0, 1.0)
        telemetry.rollup("server_crashed", "gauge").record(1.0, 0.0)
        ctx = ctx_at(telemetry, now=10.0)
        assert ctx.find("host_up") == [
            'host_up{host="esx01"}',
            'host_up{host="esx02"}',
        ]
        assert ctx.find("host_up", host="esx02") == ['host_up{host="esx02"}']
        assert ctx.find("absent") == []

    def test_find_by_predicate(self, telemetry):
        telemetry.rollup(
            'vc-1.hostd.host-3.timeouts{host="esx02"}', "counter"
        ).record(1.0, 1.0)
        ctx = ctx_at(telemetry, now=10.0)
        ids = ctx.find(lambda name: name.endswith(".timeouts"))
        assert ids == ['vc-1.hostd.host-3.timeouts{host="esx02"}']
        assert ctx.labels(ids[0]) == {"host": "esx02"}

    def test_validation(self, telemetry):
        with pytest.raises(ValueError):
            EvidenceContext(telemetry, now=0.0, lookback_s=0.0)
