"""Bounded message-fault chaos sweep: exactly-once must hold under transport chaos.

A tier-1-sized slice of the R-X5 acceptance sweep: a handful of seeded
storm runs, each fully bus-mediated, each hit by one message-fault kind
(drop / duplicate / delay / reorder / partition) — some combined with a
mid-storm server crash — and every run must quiesce with
``check_exactly_once`` clean: no lost terminal task, no double-applied
work, nothing stranded.  The full 200-point sweep runs via
``python -m repro.faults.chaos --mode message``.
"""

import random

import pytest

from repro.faults.chaos import (
    MESSAGE_FAULT_KINDS,
    message_fault_sweep,
    run_message_fault_point,
)
from repro.faults.schedule import (
    FaultSchedule,
    MessageDelay,
    MessageDrop,
    MessageDuplicate,
    MessageReorder,
    TopicPartition,
)


@pytest.mark.parametrize("kind", MESSAGE_FAULT_KINDS)
def test_each_message_fault_kind_preserves_exactly_once(kind):
    intensity = {"drop": 0.4, "duplicate": 0.4, "delay": 2.0, "reorder": 0.6}.get(
        kind, 0.0
    )
    result = run_message_fault_point(
        seed=11,
        kind=kind,
        intensity=intensity,
        fault_at_s=2.0,
        fault_duration_s=40.0,
        total=8,
        concurrency=4,
    )
    assert result.ok, result.violations
    assert result.completed + result.failed == 8
    assert result.published > 0 and result.delivered > 0


def test_message_fault_with_crash_preserves_exactly_once():
    result = run_message_fault_point(
        seed=5,
        kind="drop",
        intensity=0.5,
        fault_at_s=2.0,
        fault_duration_s=90.0,
        total=8,
        concurrency=4,
        crash_at_s=20.0,
        downtime_s=30.0,
    )
    assert result.ok, result.violations
    assert result.completed + result.failed == 8


def test_bounded_message_fault_sweep_all_clean():
    results = message_fault_sweep(
        seeds=range(2),
        points_per_seed=5,
        rng=random.Random(0xB005),
        total=8,
        concurrency=4,
    )
    assert len(results) == 10
    # Every kind appears: points cycle through the kind list.
    assert {r.kind for r in results} == set(MESSAGE_FAULT_KINDS)
    bad = [r for r in results if not r.ok]
    assert bad == [], [(r.seed, r.kind, r.violations) for r in bad]


def test_message_fault_specs_roundtrip_through_dicts():
    schedule = FaultSchedule(
        [
            MessageDrop(start_s=1.0, duration_s=10.0, rate=0.4),
            MessageDuplicate(start_s=2.0, duration_s=10.0, rate=0.2, topics=("a", "b")),
            MessageDelay(start_s=3.0, duration_s=10.0, delay_s=1.5),
            MessageReorder(start_s=4.0, duration_s=10.0, rate=0.7, topics=("a",)),
            TopicPartition(start_s=5.0, duration_s=10.0, topics=("tasks.submit:vc-1",)),
        ]
    )
    rebuilt = FaultSchedule.from_dicts(schedule.to_dicts())
    assert rebuilt.to_dicts() == schedule.to_dicts()
    assert [spec.describe([]) for spec in rebuilt] == [
        spec.describe([]) for spec in schedule
    ]
