"""A bounded chaos crash-sweep in tier-1.

The full acceptance sweep (200 randomized crash points, ``python -m
repro.faults.chaos``) is CI's chaos job; this keeps a small deterministic
slice of it in the fast suite so the exactly-once invariant cannot rot
between chaos runs.
"""

import random

from repro.faults.chaos import crash_sweep, run_crash_point


def test_bounded_sweep_holds_exactly_once():
    results = crash_sweep(
        seeds=range(2),
        points_per_seed=3,
        rng=random.Random(0xC4A5),
        total=8,
        concurrency=3,
    )
    assert len(results) == 6
    for result in results:
        assert result.ok, (result.seed, result.crash_at_s, result.violations)
    # The sweep actually exercised recovery, not just post-drain crashes.
    assert sum(result.parked for result in results) > 0
    assert sum(result.adopted + result.reissued + result.requeued
               for result in results) > 0


def test_baseline_point_runs_crash_free():
    result = run_crash_point(
        seed=0, crash_at_s=None, downtime_s=0.0, total=6, concurrency=3
    )
    assert result.ok
    assert result.parked == 0
    assert result.mttr_s == 0.0
    assert result.completed == 6
