"""Ground-truth manifests: windows, spec resolution, JSON round-trip."""

import pytest

from repro.faults.manifest import (
    GroundTruthManifest,
    GroundTruthWindow,
    window_from_spec,
)
from repro.faults.schedule import (
    AgentDegrade,
    CopyFlakiness,
    DbSlowdown,
    FaultSchedule,
    HostFlap,
    MessageDelay,
    MessageDrop,
    ServerCrash,
)


def window(kind="host_flap", start=100.0, end=200.0, **kwargs):
    return GroundTruthWindow(kind=kind, start_s=start, end_s=end, **kwargs)


class TestWindow:
    def test_rejects_backwards_window(self):
        with pytest.raises(ValueError):
            window(start=200.0, end=100.0)

    def test_active_and_grace(self):
        w = window()
        assert not w.active(99.9)
        assert w.active(100.0)
        assert w.active(200.0)
        assert not w.active(230.0)
        assert w.active(230.0, grace_s=60.0)
        assert not w.active(99.9, grace_s=60.0)  # grace trails, never leads

    def test_overlaps(self):
        assert window().overlaps(window(start=150.0, end=250.0))
        assert not window().overlaps(window(start=201.0, end=300.0))

    def test_duration(self):
        assert window().duration_s == pytest.approx(100.0)


class TestWindowFromSpec:
    def test_intensity_fields_per_kind(self):
        cases = [
            (AgentDegrade(10.0, 5.0, drop_rate=0.6, latency_factor=2.0), 0.6),
            (DbSlowdown(10.0, 5.0, factor=4.0), 4.0),
            (CopyFlakiness(10.0, 5.0, fail_rate=0.25), 0.25),
            (MessageDrop(10.0, 5.0, rate=0.4), 0.4),
            (MessageDelay(10.0, 5.0, delay_s=3.0), 3.0),
            (HostFlap(10.0, 5.0, count=2), 1.0),  # no intensity field
        ]
        for spec, intensity in cases:
            assert window_from_spec(spec).intensity == pytest.approx(intensity)

    def test_planned_window_uses_spec_times(self):
        w = window_from_spec(HostFlap(30.0, 45.0))
        assert (w.start_s, w.end_s) == (30.0, 45.0 + 30.0)

    def test_resolved_overrides(self):
        w = window_from_spec(
            HostFlap(30.0, 45.0), start_s=33.0, end_s=80.0, targets=["esx01"]
        )
        assert (w.start_s, w.end_s) == (33.0, 80.0)
        assert w.targets == ("esx01",)

    def test_named_targets_from_spec(self):
        w = window_from_spec(HostFlap(0.0, 5.0, hosts=("esx01", "esx02")))
        assert w.targets == ("esx01", "esx02")

    def test_params_exclude_timing_and_targets(self):
        w = window_from_spec(AgentDegrade(0.0, 5.0, count=3, latency_factor=7.0))
        assert "start_s" not in w.params
        assert "hosts" not in w.params
        assert w.params["latency_factor"] == pytest.approx(7.0)


class TestManifest:
    def test_round_trip_json(self):
        manifest = GroundTruthManifest(
            [
                window(),
                window(
                    kind="agent_degrade",
                    start=50.0,
                    end=80.0,
                    targets=("esx01",),
                    intensity=0.5,
                    params={"latency_factor": 4.0},
                ),
            ]
        )
        restored = GroundTruthManifest.from_json(manifest.to_json())
        assert restored.to_dicts() == manifest.to_dicts()
        assert restored.windows == manifest.windows

    def test_active_at_sorted_by_proximity(self):
        manifest = GroundTruthManifest(
            [window(start=0.0, end=500.0), window(kind="db_slowdown", start=140.0, end=300.0)]
        )
        active = manifest.active_at(150.0)
        assert [w.kind for w in active] == ["db_slowdown", "host_flap"]

    def test_kinds(self):
        manifest = GroundTruthManifest([window(), window(kind="db_slowdown")])
        assert manifest.kinds() == ["db_slowdown", "host_flap"]


class TestScheduleGroundTruth:
    def test_planned_view_covers_every_spec(self):
        schedule = (
            FaultSchedule()
            .add(HostFlap(10.0, 20.0, count=2))
            .add(ServerCrash(100.0, 15.0))
        )
        manifest = schedule.ground_truth()
        assert [w.kind for w in manifest] == ["host_flap", "server_crash"]
        assert manifest.windows[1].end_s == pytest.approx(115.0)
