"""Integration tests: the injector driving schedules against a live rig."""

import random

import pytest

from repro.core.experiments import StormRig
from repro.datacenter import HostState
from repro.faults import (
    AgentDegrade,
    DatastoreOutage,
    DbSlowdown,
    FaultInjector,
    FaultSchedule,
    FaultTargets,
    HostFlap,
)


@pytest.fixture
def rig():
    return StormRig(seed=3, hosts=4, datastores=2)


def make_injector(rig, schedule, seed=5):
    return FaultInjector(
        rig.sim,
        FaultTargets.for_server(rig.server),
        schedule,
        rng=random.Random(seed),
    )


def drain(rig, injector):
    process = rig.sim.spawn(injector.drain(), name="drain")
    rig.sim.run(until=process)


def test_targets_resolve_from_server(rig):
    targets = FaultTargets.for_server(rig.server)
    assert len(targets.hosts) == 4
    assert len(targets.datastores) == 2
    assert targets.agent_hook(rig.hosts[0]) is rig.server.agent(rig.hosts[0]).faults


def test_named_selection_rejects_unknown_host(rig):
    targets = FaultTargets.for_server(rig.server)
    with pytest.raises(KeyError, match="esx99"):
        targets.pick_hosts(("esx99",), 1, random.Random(0))


def test_flap_window_flips_and_restores_state(rig):
    schedule = FaultSchedule(
        [HostFlap(start_s=10.0, duration_s=20.0, hosts=("esx00",))]
    )
    injector = make_injector(rig, schedule).start()
    rig.sim.run(until=15.0)
    assert rig.hosts[0].state == HostState.DISCONNECTED
    assert injector.active == 1
    drain(rig, injector)
    assert rig.hosts[0].state == HostState.CONNECTED
    assert injector.active == 0


def test_overlapping_flaps_restore_exactly_once(rig):
    schedule = FaultSchedule(
        [
            HostFlap(start_s=0.0, duration_s=30.0, hosts=("esx01",)),
            HostFlap(start_s=10.0, duration_s=40.0, hosts=("esx01",)),
        ]
    )
    injector = make_injector(rig, schedule).start()
    rig.sim.run(until=35.0)
    # First window closed, second still open: host must stay down.
    assert rig.hosts[1].state == HostState.DISCONNECTED
    drain(rig, injector)
    assert rig.hosts[1].state == HostState.CONNECTED


def test_degrade_window_arms_and_disarms_agent_hook(rig):
    schedule = FaultSchedule(
        [
            AgentDegrade(
                start_s=5.0,
                duration_s=10.0,
                hosts=("esx02",),
                latency_factor=4.0,
                drop_rate=0.25,
            )
        ]
    )
    injector = make_injector(rig, schedule).start()
    hook = rig.server.agent(rig.hosts[2]).faults
    rig.sim.run(until=6.0)
    assert hook.latency_factor == pytest.approx(4.0)
    assert hook.drop_rate == pytest.approx(0.25)
    drain(rig, injector)
    assert hook.latency_factor == 1.0
    assert hook.drop_rate == 0.0
    assert not hook.armed


def test_db_and_datastore_windows_hit_their_hooks(rig):
    schedule = FaultSchedule(
        [
            DbSlowdown(start_s=0.0, duration_s=10.0, factor=2.5),
            DatastoreOutage(start_s=0.0, duration_s=10.0, datastores=("lun00",)),
        ]
    )
    injector = make_injector(rig, schedule).start()
    rig.sim.run(until=1.0)
    assert rig.server.database.faults.latency_factor == pytest.approx(2.5)
    assert rig.server.copy_engine.faults.blocked(rig.datastores[0].entity_id)
    assert not rig.server.copy_engine.faults.blocked(rig.datastores[1].entity_id)
    drain(rig, injector)
    assert rig.server.database.faults.latency_factor == 1.0
    assert not rig.server.copy_engine.faults.armed


def test_timeline_records_arm_disarm_pairs(rig):
    schedule = FaultSchedule(
        [HostFlap(start_s=2.0, duration_s=3.0, hosts=("esx00",))]
    )
    injector = make_injector(rig, schedule).start()
    drain(rig, injector)
    lines = injector.timeline()
    assert len(lines) == 2
    assert "arm" in lines[0] and "host_flap[esx00]" in lines[0]
    assert "disarm" in lines[1]
    assert injector.metrics.counter("windows_armed").value == 1


def test_start_twice_rejected(rig):
    injector = make_injector(rig, FaultSchedule())
    injector.start()
    with pytest.raises(RuntimeError, match="already started"):
        injector.start()
