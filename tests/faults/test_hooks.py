"""Unit tests for the uniform fault-injection hook."""

import random

import pytest

from repro.faults import ALL_KEYS, FaultHook, InjectedFault, TransientError
from repro.sim import Simulator


@pytest.fixture
def hook():
    return FaultHook(Simulator(), name="unit", rng=random.Random(7))


def test_unarmed_hook_returns_unit_factor(hook):
    assert not hook.armed
    assert hook.fire() == 1.0
    assert hook.injected == 0


def test_arm_once_fires_exactly_once(hook):
    hook.arm_once()
    with pytest.raises(InjectedFault):
        hook.fire()
    assert hook.fire() == 1.0
    assert hook.injected == 1


def test_arm_once_custom_error(hook):
    class Weird(TransientError):
        pass

    hook.arm_once(Weird("boom"))
    with pytest.raises(Weird, match="boom"):
        hook.fire()


def test_arm_once_queues_in_order(hook):
    hook.arm_once(InjectedFault("first"))
    hook.arm_once(InjectedFault("second"))
    with pytest.raises(InjectedFault, match="first"):
        hook.fire()
    with pytest.raises(InjectedFault, match="second"):
        hook.fire()


def test_drop_rate_fails_probabilistically(hook):
    hook.set_drop("window", 0.5)
    outcomes = []
    for _ in range(200):
        try:
            hook.fire()
            outcomes.append(False)
        except InjectedFault:
            outcomes.append(True)
    failed = sum(outcomes)
    assert 60 < failed < 140
    assert hook.injected == failed


def test_drop_rates_compose_as_independent_events(hook):
    hook.set_drop("a", 0.5)
    hook.set_drop("b", 0.5)
    assert hook.drop_rate == pytest.approx(0.75)
    hook.clear_drop("a")
    assert hook.drop_rate == pytest.approx(0.5)


def test_drop_rate_validated(hook):
    with pytest.raises(ValueError, match="drop rate"):
        hook.set_drop("w", 1.5)


def test_latency_factors_multiply_across_sources(hook):
    hook.set_latency("a", 2.0)
    hook.set_latency("b", 3.0)
    assert hook.fire() == pytest.approx(6.0)
    hook.clear_latency("b")
    assert hook.fire() == pytest.approx(2.0)


def test_latency_factor_validated(hook):
    with pytest.raises(ValueError, match="latency factor"):
        hook.set_latency("w", 0.5)


def test_keyed_block_only_hits_matching_key(hook):
    hook.block("outage", key="ds-1")
    with pytest.raises(InjectedFault, match="ds-1"):
        hook.fire(key="ds-1")
    assert hook.fire(key="ds-2") == 1.0
    assert hook.fire() == 1.0  # unkeyed fire misses a keyed block


def test_star_block_hits_everything(hook):
    hook.block("outage", key=ALL_KEYS)
    with pytest.raises(InjectedFault):
        hook.fire(key="anything")
    with pytest.raises(InjectedFault):
        hook.fire()


def test_disarm_removes_every_shape_for_source(hook):
    hook.set_drop("w", 1.0)
    hook.set_latency("w", 4.0)
    hook.block("w")
    hook.set_latency("other", 2.0)
    hook.disarm("w")
    assert hook.fire() == pytest.approx(2.0)  # other window still armed
    assert hook.armed


def test_error_factory_controls_exception_type():
    class AgentDown(TransientError):
        pass

    hook = FaultHook(Simulator(), name="agent", error_factory=AgentDown)
    hook.block("w")
    with pytest.raises(AgentDown):
        hook.fire()
