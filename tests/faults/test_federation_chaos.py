"""Property: work-stealing preserves exactly-once, whatever the chaos.

The federation acceptance invariant: after a skewed deploy storm rides
the federation topics through an arbitrary fault point — a shard crash,
a full server crash with journal replay, or any of the message-fault
kinds overlaid on the topics — the system quiesces with no lost or
duplicated terminal task state across shard boundaries, no duplicated
placed VM anywhere in the federation, every topic drained, and every
submission's reply settled (``check_federation_exactly_once``). The
result's ``violations`` list is that checker's output; the property is
that it stays empty at every sampled point.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.faults.chaos import (
    MESSAGE_FAULT_KINDS,
    federation_fault_sweep,
    run_federation_fault_point,
)


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    crash_kind=st.sampled_from(["shard_crash", "server_crash", None]),
    message_kind=st.sampled_from(MESSAGE_FAULT_KINDS + (None,)),
    affinity_only=st.booleans(),
)
def test_stealing_preserves_exactly_once(seed, crash_kind, message_kind, affinity_only):
    kwargs = dict(
        total=10,
        concurrency=4,
        shards=3,
        hosts_per_shard=3,
        orgs=6,
        skew=0.8,
        spill_queue_depth=2,
        affinity_only=affinity_only,
    )
    if crash_kind is not None:
        kwargs.update(crash_at_s=8.0, downtime_s=25.0, crash_kind=crash_kind)
    if message_kind is not None:
        intensity = {"drop": 0.3, "duplicate": 0.3, "delay": 2.0,
                     "reorder": 0.5, "partition": 0.0}[message_kind]
        kwargs.update(
            kind=message_kind, intensity=intensity,
            fault_at_s=4.0, fault_duration_s=30.0,
        )
    result = run_federation_fault_point(seed, **kwargs)
    assert result.violations == []
    # Terminal accounting always balances, even when deploys fail.
    assert result.completed + result.failed == 10


def test_sweep_smoke_holds_invariant_everywhere():
    results = federation_fault_sweep([0], points_per_seed=7, total=12, concurrency=4)
    assert len(results) == 7
    assert all(point.ok for point in results)
    # The sweep is not vacuous: stealing and crash re-routing both fired
    # somewhere across the sampled points.
    assert sum(point.steals for point in results) > 0
    assert sum(point.reroutes for point in results) > 0


def test_crashed_shard_strands_affinity_but_not_bus():
    """The headline R-X8 contrast at property-test scale."""
    common = dict(
        total=12, concurrency=4, shards=3, hosts_per_shard=3, orgs=6,
        skew=0.9, crash_at_s=6.0, downtime_s=40.0, crash_kind="shard_crash",
    )
    affinity = run_federation_fault_point(2, affinity_only=True, **common)
    bus = run_federation_fault_point(2, affinity_only=False, **common)
    assert affinity.violations == [] and bus.violations == []
    assert affinity.failed > 0  # hot tenants stranded on the crashed home
    assert bus.failed == 0  # every submission re-routed to survivors
    assert bus.reroutes + bus.steals > 0
