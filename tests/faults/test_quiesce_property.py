"""Property test: nothing is lost, whatever the fault schedule.

The R-X3 acceptance invariant: after an arbitrary randomized fault
schedule plays out over a deploy storm, the system quiesces — every
fault window disarmed, every started task SUCCESS or ERROR (nothing
stranded QUEUED/RUNNING), every request process finished, and no
injected fault left armed.

Randomized schedules include ``server_crash`` windows (the management
server halts, in-flight work is interrupted, and a restart replays the
recovery path), so the property also covers crash/recovery quiescence:
the server must end restarted and every crash-parked task adjudicated.

Schedules also include the ``message_*`` / ``topic_partition`` kinds;
with ``bus=True`` the same storm runs fully bus-mediated, so the
property additionally covers transport chaos: dropped, duplicated,
delayed, reordered, and partitioned messages must still quiesce with
every task accounted and the bus fault hook disarmed. (With ``bus=False``
those windows arm as no-ops — the schedule stays portable.)
"""

import random

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cloud.catalog import Catalog, CatalogItem
from repro.cloud.director import CloudDirector, DeployRequest
from repro.cloud.tenancy import Organization
from repro.controlplane import ControlPlaneConfig
from repro.controlplane.resilience import BreakerPolicy, NO_RETRY, RetryPolicy
from repro.core.experiments import StormRig
from repro.datacenter import HostState
from repro.datacenter.templates import MEDIUM_LINUX
from repro.faults import FaultInjector, FaultTargets, random_fault_schedule
from repro.sim.events import AllOf


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    resilient=st.booleans(),
    bus=st.booleans(),
)
def test_every_started_task_is_accounted_for(seed, resilient, bus):
    duration = 300.0
    if resilient:
        config = ControlPlaneConfig(
            retry_policy=RetryPolicy(max_attempts=3, base_backoff_s=0.5),
            retry_budget_ratio=0.5,
            task_deadline_s=150.0,
            breaker=BreakerPolicy(failure_threshold=3, cooldown_s=20.0),
        )
        director_policy = RetryPolicy(max_attempts=3, base_backoff_s=1.0)
    else:
        config = ControlPlaneConfig()
        director_policy = NO_RETRY

    rig = StormRig(
        seed=seed, hosts=4, datastores=2, config=config,
        bus=bus, direct_calls=not bus,
    )
    catalog = Catalog("prop")
    item = catalog.add(CatalogItem(name="web", template_name=MEDIUM_LINUX.name))
    org = Organization("org", quota_vms=10_000, quota_storage_gb=1e6)
    director = CloudDirector(
        rig.server, rig.cluster, rig.library, catalog, retry_policy=director_policy
    )
    schedule = random_fault_schedule(random.Random(seed), duration)
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(rig.server),
        schedule,
        rng=random.Random(seed + 1),
    ).start()

    outcomes = []
    requests = []

    def one(index):
        try:
            yield from director.deploy(
                DeployRequest(org=org, item=item, vm_count=1, vapp_name=f"r{index}")
            )
        except Exception as error:  # noqa: BLE001 - recorded, asserted below
            outcomes.append(error)
        else:
            outcomes.append(None)

    def arrivals():
        rng = random.Random(seed + 2)
        for index in range(10):
            yield rig.sim.timeout(rng.uniform(0.0, duration / 10))
            requests.append(rig.sim.spawn(one(index), name=f"req-{index}"))

    source = rig.sim.spawn(arrivals(), name="arrivals")
    rig.sim.run(until=source)
    rig.sim.run(until=AllOf(rig.sim, requests))
    rig.sim.run(until=rig.sim.spawn(injector.drain(), name="drain"))
    rig.sim.run()  # drain any trailing timers; must terminate

    # The simulation quiesced: nothing scheduled, no window armed.
    assert rig.sim.peek() == float("inf")
    assert injector.active == 0

    # Every request ran to completion (deploy absorbs per-VM failures).
    assert len(outcomes) == 10
    assert all(error is None for error in outcomes)

    # Every started task is terminal; none stranded queued or running.
    # assert_accounted is the hard invariant every exhibit runs too.
    tasks = rig.server.tasks
    tasks.assert_accounted()
    assert len(tasks.succeeded()) + len(tasks.failed()) == len(tasks.tasks)

    # Any server crash ended in a completed recovery: server back up,
    # nothing still parked awaiting a reconciliation verdict.
    assert not rig.server.crashed
    assert rig.server.recovery.parked_count == 0
    for epoch in rig.server.recovery.crashes:
        assert epoch.restarted_at is not None

    # Dead letters only exist where a retry policy made the promise, and
    # each one maps to a failed task.
    if not resilient:
        assert tasks.dead_letters == []
    failed_ids = {task.task_id for task in tasks.failed()}
    assert all(letter.task_id in failed_ids for letter in tasks.dead_letters)

    # Fault windows restored what they touched.
    assert all(host.state == HostState.CONNECTED for host in rig.hosts)
    assert not rig.server.database.faults.armed
    assert not rig.server.copy_engine.faults.armed
    assert not rig.server.faults.armed
    for host in rig.hosts:
        assert not rig.server.agent(host).faults.armed
    if rig.bus is not None and rig.bus.mediated:
        assert not rig.bus.faults.armed
