"""Unit tests for declarative fault schedules."""

import random

import pytest

from repro.faults import (
    AgentDegrade,
    CopyFlakiness,
    DbSlowdown,
    FaultSchedule,
    HostFlap,
    SPEC_KINDS,
    random_fault_schedule,
    standard_fault_schedule,
)


def test_spec_window_validation():
    with pytest.raises(ValueError, match="start_s"):
        HostFlap(start_s=-1.0, duration_s=10.0)
    with pytest.raises(ValueError, match="duration_s"):
        HostFlap(start_s=0.0, duration_s=0.0)


def test_agent_degrade_must_degrade_something():
    with pytest.raises(ValueError, match="must degrade"):
        AgentDegrade(start_s=0.0, duration_s=10.0)
    with pytest.raises(ValueError, match="latency_factor"):
        AgentDegrade(start_s=0.0, duration_s=10.0, latency_factor=0.5)
    with pytest.raises(ValueError, match="drop_rate"):
        AgentDegrade(start_s=0.0, duration_s=10.0, drop_rate=1.5)


def test_db_slowdown_factor_validation():
    with pytest.raises(ValueError, match="factor"):
        DbSlowdown(start_s=0.0, duration_s=10.0, factor=1.0)


def test_copy_flakiness_rate_validation():
    with pytest.raises(ValueError, match="fail_rate"):
        CopyFlakiness(start_s=0.0, duration_s=10.0, fail_rate=0.0)


def test_schedule_rejects_non_specs():
    with pytest.raises(TypeError, match="FaultSpec"):
        FaultSchedule(["not a spec"])


def test_horizon_is_latest_window_end():
    schedule = FaultSchedule(
        [
            HostFlap(start_s=0.0, duration_s=30.0),
            DbSlowdown(start_s=50.0, duration_s=25.0, factor=2.0),
        ]
    )
    assert schedule.horizon_s == 75.0
    assert FaultSchedule().horizon_s == 0.0


def test_roundtrip_through_dicts():
    schedule = FaultSchedule(
        [
            HostFlap(start_s=5.0, duration_s=10.0, hosts=("esx01",)),
            AgentDegrade(
                start_s=20.0, duration_s=40.0, count=2, latency_factor=3.0
            ),
            CopyFlakiness(start_s=1.0, duration_s=9.0, fail_rate=0.3),
        ]
    )
    rebuilt = FaultSchedule.from_dicts(schedule.to_dicts())
    assert rebuilt.to_dicts() == schedule.to_dicts()
    assert [spec.kind for spec in rebuilt] == [spec.kind for spec in schedule]


def test_from_dicts_rejects_unknown_kind():
    with pytest.raises(ValueError, match="unknown fault kind"):
        FaultSchedule.from_dicts([{"kind": "meteor_strike", "start_s": 0.0}])


def test_spec_kinds_registry_complete():
    assert set(SPEC_KINDS) == {
        "host_flap",
        "agent_degrade",
        "db_slowdown",
        "datastore_outage",
        "copy_flakiness",
        "shard_crash",
        "server_crash",
        "message_drop",
        "message_duplicate",
        "message_delay",
        "message_reorder",
        "topic_partition",
    }


def test_standard_schedule_quiesces_inside_duration():
    duration = 1000.0
    schedule = standard_fault_schedule(duration)
    assert len(schedule) == 5
    assert schedule.horizon_s <= duration
    for spec in schedule:
        assert 0.0 <= spec.start_s < duration


def test_standard_schedule_scale_widens_blast_radius():
    small = standard_fault_schedule(600.0, scale=1.0)
    large = standard_fault_schedule(600.0, scale=2.0)

    def degrade(schedule):
        return next(s for s in schedule if s.kind == "agent_degrade")

    assert degrade(large).count > degrade(small).count
    assert degrade(large).drop_rate > degrade(small).drop_rate
    assert degrade(large).latency_factor > degrade(small).latency_factor
    # Rates stay valid however hard the scale is pushed.
    harsh = standard_fault_schedule(600.0, scale=10.0)
    assert degrade(harsh).drop_rate <= 0.9


def test_standard_schedule_duration_validation():
    with pytest.raises(ValueError, match="duration_s"):
        standard_fault_schedule(0.0)


def test_random_schedule_bounded_and_deterministic():
    a = random_fault_schedule(random.Random(3), 500.0)
    b = random_fault_schedule(random.Random(3), 500.0)
    assert a.to_dicts() == b.to_dicts()
    assert 1 <= len(a) <= 6
    for spec in a:
        assert spec.end_s <= 500.0 * 0.8 + 500.0 * 0.5 + 1e-9


def test_describe_uses_names_not_reprs():
    # Selections hold live entities whose dataclass reprs recurse through
    # the inventory graph; describe must only ever read .name.
    class Entity:
        name = "esx07"

        def __repr__(self):  # pragma: no cover - the point is it's unused
            raise RuntimeError("describe must not repr entities")

    flap = HostFlap(start_s=0.0, duration_s=1.0)
    assert flap.describe([Entity()]) == "host_flap[esx07]"
