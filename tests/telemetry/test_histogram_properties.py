"""Property-based tests on the log-bucket histogram (hypothesis).

The fixed-log-bucket design exists so that merge is exact: any grouping
of the same samples into histograms and any merge order must yield the
same buckets, counts, and sums, and bucketed quantiles must bracket the
true sample quantile within one bucket's relative error. These are the
invariants the scrape/roll-up pipeline leans on.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import LOG_HISTOGRAM_BASE, LogHistogram

samples = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False),
    min_size=0,
    max_size=200,
)
nonempty_samples = st.lists(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=200,
)


def build(values):
    hist = LogHistogram("h")
    for value in values:
        hist.record(value)
    return hist


@given(samples)
@settings(max_examples=80)
def test_count_and_sum_exact(values):
    hist = build(values)
    assert hist.count == len(values)
    assert hist.total == pytest.approx(math.fsum(values))
    if values:
        assert hist.min == min(values)
        assert hist.max == max(values)


@given(samples, samples)
@settings(max_examples=80)
def test_merge_equals_rebuild(a, b):
    merged = build(a).merge(build(b))
    rebuilt = build(a + b)
    assert merged.count == rebuilt.count
    assert merged.zeros == rebuilt.zeros
    assert merged._buckets == rebuilt._buckets
    assert merged.total == pytest.approx(rebuilt.total)


@given(samples, samples, samples)
@settings(max_examples=60)
def test_merge_associative(a, b, c):
    left = build(a).merge(build(b)).merge(build(c))
    right = build(a).merge(build(b).merge(build(c)))
    assert left._buckets == right._buckets
    assert left.zeros == right.zeros
    assert left.count == right.count
    assert left.total == pytest.approx(right.total)


@given(nonempty_samples, st.floats(min_value=0.01, max_value=0.99))
@settings(max_examples=80)
def test_quantile_bounds_bracket_true_quantile(values, fraction):
    hist = build(values)
    low, high = hist.quantile_bounds(fraction)
    rank = max(1, math.ceil(fraction * len(values)))
    true = sorted(values)[rank - 1]
    assert low <= true * (1 + 1e-9)
    assert high >= true * (1 - 1e-9)
    # The bracket is one bucket wide: relative error bounded by the base.
    if low > 0:
        assert high / low <= LOG_HISTOGRAM_BASE * (1 + 1e-9)


@given(nonempty_samples, st.floats(min_value=1e-3, max_value=1e9))
@settings(max_examples=80)
def test_count_at_or_above_conservative(values, threshold):
    hist = build(values)
    exact = sum(1 for value in values if value >= threshold)
    counted = hist.count_at_or_above(threshold)
    # Never undercounts (conservative toward "bad"), and only overcounts
    # within the threshold's own bucket.
    assert counted >= exact
    overcount_limit = sum(
        1
        for value in values
        if value >= threshold / LOG_HISTOGRAM_BASE * (1 - 1e-9)
    )
    assert counted <= overcount_limit


def test_rejects_bad_values():
    hist = LogHistogram("h")
    for bad in (float("nan"), float("inf"), -1.0):
        with pytest.raises(ValueError):
            hist.record(bad)


def test_merge_requires_matching_base():
    with pytest.raises(ValueError):
        LogHistogram("a", base=2.0).merge(LogHistogram("b", base=4.0))
