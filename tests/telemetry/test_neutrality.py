"""Scrape neutrality: telemetry must observe without perturbing.

The differential test ISSUE demands: run the same seeded storm with
telemetry off and with the scraper running, and require the *task
schedules* — every task's submit/start/finish time, state, and attempt
count — to be identical. The scraper only reads model state, so its timer
events must not shift any workload event.
"""

import pytest

from repro.core.experiments import StormRig
from repro.faults.injector import FaultInjector, FaultTargets
from repro.faults.schedule import standard_fault_schedule


def schedule_of(rig):
    return [
        (
            task.task_id,
            task.op_type,
            task.submitted_at,
            task.started_at,
            task.finished_at,
            task.state.name,
            task.attempts,
        )
        for task in rig.server.tasks.tasks
    ]


def run_storm(telemetry: bool, faults: bool = False):
    # Fast cadence so plenty of scraper events interleave with the storm.
    rig = StormRig(
        seed=3, hosts=8, datastores=2, telemetry=telemetry, scrape_interval_s=0.5
    )
    if telemetry:
        rig.telemetry.start()
    injector = None
    if faults:
        injector = FaultInjector(
            rig.sim,
            FaultTargets.for_server(rig.server),
            standard_fault_schedule(600.0),
            rng=rig.streams.stream("fault-injector"),
        ).start()
    summary = rig.closed_loop_storm(total=48, concurrency=12, linked=True)
    if injector is not None:
        rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))
    return rig, summary


@pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulted"])
def test_task_schedule_identical_with_and_without_telemetry(faults):
    rig_off, summary_off = run_storm(telemetry=False, faults=faults)
    rig_on, summary_on = run_storm(telemetry=True, faults=faults)

    assert schedule_of(rig_on) == schedule_of(rig_off)
    assert summary_on == summary_off
    # The telemetry run actually observed something — the comparison is
    # not vacuous.
    assert rig_on.telemetry.scraper.scrapes > 10
    assert rig_on.telemetry.rollups
    assert rig_off.telemetry.rollups == {}
