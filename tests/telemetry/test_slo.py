"""SLO burn-rate rules: burn arithmetic, multi-window AND, fire/resolve."""

import pytest

from repro.sim.kernel import Simulator
from repro.telemetry.metrics import Telemetry
from repro.telemetry.slo import (
    BurnWindow,
    LatencyRule,
    RatioRule,
    SloRule,
)

WINDOW = BurnWindow(short_s=60.0, long_s=180.0, threshold=2.0)


@pytest.fixture
def telemetry():
    return Telemetry(Simulator(), scrape_interval_s=5.0)


def feed(telemetry, time, good, bad):
    """Land one scrape window's worth of outcome deltas directly."""
    telemetry.rollup('done_total{outcome="success"}', "counter").record(time, good)
    telemetry.rollup('done_total{outcome="error"}', "counter").record(time, bad)


def ratio_rule(objective=0.9, windows=(WINDOW,)):
    return RatioRule(
        name="goodput",
        objective=objective,
        windows=windows,
        bad_metric='done_total{outcome="error"}',
        total_metrics=(
            'done_total{outcome="success"}',
            'done_total{outcome="error"}',
        ),
    )


class TestValidation:
    def test_burn_window_bounds(self):
        with pytest.raises(ValueError):
            BurnWindow(short_s=0.0, long_s=60.0, threshold=1.0)
        with pytest.raises(ValueError):
            BurnWindow(short_s=120.0, long_s=60.0, threshold=1.0)
        with pytest.raises(ValueError):
            BurnWindow(short_s=60.0, long_s=120.0, threshold=0.0)

    def test_objective_bounds(self):
        for objective in (0.0, 1.0, -0.5):
            with pytest.raises(ValueError):
                ratio_rule(objective=objective)

    def test_ratio_rule_needs_metrics(self):
        with pytest.raises(ValueError):
            RatioRule(name="r", objective=0.9)

    def test_latency_rule_needs_metric_and_threshold(self):
        with pytest.raises(ValueError):
            LatencyRule(name="l", objective=0.9)
        with pytest.raises(ValueError):
            LatencyRule(name="l", objective=0.9, metric="m", threshold_s=0.0)

    def test_duplicate_rule_name_rejected(self, telemetry):
        telemetry.add_rule(ratio_rule())
        with pytest.raises(ValueError, match="already registered"):
            telemetry.add_rule(ratio_rule())


class TestBurn:
    def test_burn_is_ratio_over_budget(self, telemetry):
        rule = ratio_rule(objective=0.9)  # budget 0.1
        feed(telemetry, 10.0, good=80.0, bad=20.0)  # ratio 0.2 -> burn 2
        assert rule.burn(telemetry, 60.0, now=20.0) == pytest.approx(2.0)

    def test_no_traffic_means_no_burn(self, telemetry):
        rule = ratio_rule()
        assert rule.burn(telemetry, 60.0, now=20.0) == 0.0

    def test_latency_rule_counts_threshold_breaches(self, telemetry):
        rule = LatencyRule(
            name="p99", objective=0.5, windows=(WINDOW,), metric="lat", threshold_s=10.0
        )
        series = telemetry.rollup("lat", "histogram")
        from repro.sim.stats import LogHistogram

        delta = LogHistogram()
        for value in (1.0, 2.0, 50.0, 80.0):
            delta.record(value)
        series.absorb_histogram(10.0, delta)
        bad, total = rule.bad_total(telemetry, 60.0, now=20.0)
        assert total == 4.0
        assert bad == 2.0
        assert rule.burn(telemetry, 60.0, now=20.0) == pytest.approx(1.0)

    def test_base_rule_is_abstract(self, telemetry):
        rule = SloRule(name="base", objective=0.9)
        with pytest.raises(NotImplementedError):
            rule.bad_total(telemetry, 60.0, 0.0)


class TestFireResolve:
    def test_fires_only_when_both_windows_burn(self, telemetry):
        telemetry.add_rule(ratio_rule(objective=0.9))
        # Short window hot, long window still quiet: 170 s of clean traffic
        # first, then one bad burst.
        for tick in range(17):
            feed(telemetry, tick * 10.0, good=10.0, bad=0.0)
            telemetry.monitor.evaluate(tick * 10.0 + 1.0)
        assert telemetry.monitor.timeline == []
        feed(telemetry, 170.0, good=0.0, bad=10.0)
        telemetry.monitor.evaluate(171.0)
        # Long-window ratio only 10/180 -> burn ~0.56 < 2: still quiet.
        assert telemetry.monitor.timeline == []

    def test_fire_then_resolve(self, telemetry):
        telemetry.add_rule(ratio_rule(objective=0.9))
        for tick in range(6):  # sustained 50% errors for 60 s
            feed(telemetry, tick * 10.0, good=5.0, bad=5.0)
            telemetry.monitor.evaluate(tick * 10.0 + 1.0)
        events = telemetry.monitor.timeline
        assert [event.kind for event in events] == ["fire"]
        assert events[0].rule == "goodput"
        assert events[0].burn_short >= 2.0
        assert len(telemetry.monitor.active_alerts()) == 1

        # Recovery: clean traffic until both windows drain.
        for tick in range(6, 40):
            feed(telemetry, tick * 10.0, good=10.0, bad=0.0)
            telemetry.monitor.evaluate(tick * 10.0 + 1.0)
        kinds = [event.kind for event in telemetry.monitor.timeline]
        assert kinds == ["fire", "resolve"]
        assert telemetry.monitor.active_alerts() == []
        alert = telemetry.monitor.alerts[0]
        assert alert.resolved_at is not None
        assert alert.peak_burn >= 2.0

    def test_refire_after_resolve_is_new_alert(self, telemetry):
        telemetry.add_rule(ratio_rule(objective=0.9, windows=(
            BurnWindow(short_s=30.0, long_s=30.0, threshold=2.0),
        )))
        # Timestamps spaced past the 60 s level-0 window width: trailing()
        # includes whole overlapping windows, so adjacent bursts would smear.
        feed(telemetry, 0.0, good=0.0, bad=10.0)
        telemetry.monitor.evaluate(1.0)
        feed(telemetry, 120.0, good=10.0, bad=0.0)
        telemetry.monitor.evaluate(121.0)
        feed(telemetry, 240.0, good=0.0, bad=10.0)
        telemetry.monitor.evaluate(241.0)
        kinds = [event.kind for event in telemetry.monitor.timeline]
        assert kinds == ["fire", "resolve", "fire"]
        assert len(telemetry.monitor.alerts) == 2

    def test_render_timeline_format(self, telemetry):
        telemetry.add_rule(ratio_rule(objective=0.9, windows=(
            BurnWindow(short_s=30.0, long_s=30.0, threshold=2.0),
        )))
        feed(telemetry, 0.0, good=0.0, bad=10.0)
        telemetry.monitor.evaluate(1.0)
        lines = telemetry.monitor.render_timeline()
        assert len(lines) == 1
        assert "FIRE" in lines[0]
        assert "goodput" in lines[0]
        assert "win 30s/30s x2" in lines[0]
