"""Roll-up series: window alignment, fold-up, bounded memory, invariance.

The headline property (hypothesis): a roll-up of roll-ups equals the
roll-up of the raw samples — exactly for count/sum/min/max, within one
log bucket for quantiles. That is what makes the vCenter-style
level/rollup hierarchy lossless for SLO accounting.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.stats import LogHistogram
from repro.telemetry.rollup import (
    DEFAULT_RETENTION,
    RollupSeries,
    Window,
    merge_windows,
)

sample_streams = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=7200.0, allow_nan=False),
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    ),
    min_size=1,
    max_size=150,
).map(lambda pairs: sorted(pairs))


class TestWindow:
    def test_record_tracks_exact_scalars(self):
        window = Window(0.0, 60.0)
        for value in (3.0, 1.0, 5.0):
            window.record(value)
        assert window.count == 3
        assert window.sum == 9.0
        assert window.min == 1.0
        assert window.max == 5.0
        assert window.last == 5.0
        assert window.mean == 3.0
        assert window.rate == pytest.approx(9.0 / 60.0)

    def test_summary_empty_window_is_all_zero(self):
        summary = Window(0.0, 60.0).summary()
        assert summary["count"] == 0
        assert summary["min"] == 0.0
        assert summary["max"] == 0.0
        assert summary["p99"] == 0.0

    def test_absorb_histogram_delta(self):
        window = Window(0.0, 60.0)
        delta = LogHistogram()
        delta.record(2.0)
        delta.record(8.0)
        window.absorb_histogram(delta)
        assert window.count == 2
        assert window.sum == pytest.approx(10.0)
        assert window.min == 2.0
        assert window.max == 8.0


class TestRollupSeries:
    def test_windows_align_to_width(self):
        series = RollupSeries("m", retention=((60.0, 4),))
        series.record(61.0, 1.0)
        series.record(119.0, 2.0)
        series.record(180.0, 3.0)
        windows = series.windows(level=0)
        assert [window.start for window in windows] == [60.0, 180.0]
        assert windows[0].count == 2
        assert windows[1].count == 1

    def test_out_of_order_sample_rejected(self):
        series = RollupSeries("m", retention=((60.0, 4),))
        series.record(120.0, 1.0)
        with pytest.raises(ValueError):
            series.record(30.0, 1.0)

    def test_eviction_folds_into_next_level(self):
        series = RollupSeries("m", retention=((10.0, 2), (30.0, 4)))
        for tick in range(9):  # samples at t=0,10,...,80 -> 9 windows
            series.record(tick * 10.0, float(tick))
        level0 = series.windows(level=0)
        assert len(level0) <= 3  # 2 closed + open
        level1 = series.windows(level=1)
        assert level1, "evicted level-0 windows must fold into level 1"
        assert all(window.width == 30.0 for window in level1)
        # No sample lost across the hierarchy.
        total = sum(w.count for w in level0) + sum(w.count for w in level1)
        assert total == 9

    def test_memory_strictly_bounded(self):
        retention = ((10.0, 3), (50.0, 2), (100.0, 2))
        series = RollupSeries("m", retention=retention)
        cap = sum(keep for _, keep in retention) + len(retention)  # + open/aggs
        for tick in range(5000):
            series.record(tick * 7.0, 1.0)
            assert series.total_windows() <= cap

    def test_retention_validation(self):
        with pytest.raises(ValueError):
            RollupSeries("m", retention=())
        with pytest.raises(ValueError):
            RollupSeries("m", retention=((60.0, 0),))
        with pytest.raises(ValueError):
            RollupSeries("m", retention=((60.0, 4), (90.0, 2)))  # not a multiple

    def test_trailing_merges_only_recent_windows(self):
        series = RollupSeries("m", retention=((60.0, 60),))
        series.record(30.0, 10.0)
        series.record(400.0, 2.0)
        series.record(430.0, 4.0)
        recent = series.trailing(120.0, now=450.0)
        assert recent.count == 2
        assert recent.sum == 6.0
        everything = series.trailing(1000.0, now=450.0)
        assert everything.count == 3
        assert everything.sum == 16.0

    def test_last_value_and_latest(self):
        series = RollupSeries("m")
        assert series.latest() is None
        assert series.last_value() == 0.0
        series.record(5.0, 42.0)
        assert series.last_value() == 42.0


@given(sample_streams)
@settings(max_examples=60)
def test_rollup_of_rollups_matches_raw(stream):
    """Level-1 fold-ups agree with directly rolling up the raw samples."""
    series = RollupSeries("m", retention=((60.0, 1), (300.0, 48)))
    for time, value in stream:
        series.record(time, value)
    # Force everything out of level 0.
    series.record(stream[-1][0] + 120.0, 0.0)

    rolled = merge_windows(
        series.windows(level=0, include_open=True) + series.windows(level=1)
    )
    raw = Window(0.0, 7200.0)
    for _, value in stream:
        raw.record(value)
    raw.record(0.0)  # the flush sample

    assert rolled.count == raw.count
    assert rolled.sum == pytest.approx(raw.sum)
    assert rolled.min == raw.min
    assert rolled.max == raw.max
    # Quantiles agree to the bucket: identical sketches either way.
    assert rolled.hist._buckets == raw.hist._buckets
    assert rolled.hist.zeros == raw.hist.zeros


@given(sample_streams, st.floats(min_value=0.05, max_value=0.99))
@settings(max_examples=60)
def test_trailing_window_equals_direct_rollup(stream, fraction):
    """trailing() over the whole span reproduces the raw-sample roll-up."""
    series = RollupSeries("m", retention=((60.0, 200),))
    for time, value in stream:
        series.record(time, value)
    now = stream[-1][0] + 1.0
    merged = series.trailing(now + 60.0, now=now)

    values = [value for _, value in stream]
    assert merged.count == len(values)
    assert merged.sum == pytest.approx(math.fsum(values))
    assert merged.min == min(values)
    assert merged.max == max(values)
    direct = LogHistogram()
    for value in values:
        direct.record(value)
    low, high = direct.quantile_bounds(fraction)
    assert low <= merged.p(fraction) * (1 + 1e-9)
    assert merged.p(fraction) <= high * (1 + 1e-9)


def test_default_retention_covers_an_hour_at_level_0():
    width, keep = DEFAULT_RETENTION[0]
    assert width * keep >= 3600.0
