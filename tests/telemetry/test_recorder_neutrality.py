"""Recorder + sampling neutrality: observe-only, byte-identical schedules.

The differential the ISSUE demands: run the same seeded faulted storm
with the full flight-recorder stack on (SampledTracer on a span budget,
triage, recorder) and with everything off, and require the *task
schedules* — every task's submit/start/finish time, state, and attempt
count — to be identical. The sampler reacts only to span finishes and
draws from a private RNG; the recorder runs inside the monitor's
evaluate step and reads only roll-ups/spans/stats. No workload event may
shift.
"""

from repro.core.experiments import StormRig
from repro.faults.injector import FaultInjector, FaultTargets
from repro.faults.schedule import standard_fault_schedule
from repro.telemetry.recorder import NULL_RECORDER
from repro.telemetry.slo import AvailabilityRule, BurnWindow, RatioRule


def schedule_of(rig):
    return [
        (
            task.task_id,
            task.op_type,
            task.submitted_at,
            task.started_at,
            task.finished_at,
            task.state.name,
            task.attempts,
        )
        for task in rig.server.tasks.tasks
    ]


def run_storm(recorder: bool):
    rig = StormRig(
        seed=3,
        hosts=8,
        datastores=2,
        telemetry=True,
        scrape_interval_s=0.5,
        triage=recorder,
        traced=recorder,
        sample_budget=512 if recorder else None,
        recorder=recorder,
    )
    # Identical monitor config either way; only the attached listeners
    # and the tracer differ. The flap takes hosts down, so the
    # availability rule burns and the recorder-on run records real
    # bundles — not a vacuous diff.
    windows = (BurnWindow(short_s=15.0, long_s=60.0, threshold=1.0),)
    rig.telemetry.add_rule(
        AvailabilityRule(
            name="host-availability",
            objective=0.99,
            metric_prefix="host_up",
            windows=windows,
        )
    )
    rig.telemetry.add_rule(
        RatioRule(
            name="task-goodput",
            objective=0.98,
            bad_metric='tasks_completed_total{outcome="error"}',
            total_metrics=(
                'tasks_completed_total{outcome="success"}',
                'tasks_completed_total{outcome="error"}',
            ),
            windows=windows,
        )
    )
    rig.telemetry.start()
    injector = FaultInjector(
        rig.sim,
        FaultTargets.for_server(rig.server),
        standard_fault_schedule(600.0),
        rng=rig.streams.stream("fault-injector"),
    ).start()
    summary = rig.closed_loop_storm(total=48, concurrency=12, linked=True)
    rig.sim.run(until=rig.sim.spawn(injector.drain(), name="fault-drain"))
    return rig, summary


def test_task_schedule_identical_with_and_without_recorder_stack():
    rig_off, summary_off = run_storm(recorder=False)
    rig_on, summary_on = run_storm(recorder=True)

    assert schedule_of(rig_on) == schedule_of(rig_off)
    assert summary_on == summary_off
    # The recorder run actually recorded — not a vacuous diff.
    assert rig_off.recorder is NULL_RECORDER
    fired = [e for e in rig_on.telemetry.monitor.timeline if e.kind == "fire"]
    assert fired
    assert rig_on.recorder.bundles
    assert rig_on.tracer.sampler.offered > 0
    # Tail sampling did real work: some trees dropped or evicted.
    assert rig_on.tracer.sampler.dropped + rig_on.tracer.sampler.evicted > 0
    # And the alert timelines themselves agree: everything read, nothing
    # wrote.
    assert [
        (e.rule, e.kind, e.time) for e in rig_on.telemetry.monitor.timeline
    ] == [(e.rule, e.kind, e.time) for e in rig_off.telemetry.monitor.timeline]
