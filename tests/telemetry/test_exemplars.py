"""Metric exemplars: a trace id riding on histogram buckets.

A LogHistogram bucket can carry the trace id of one recent observation
that landed there; exemplars must survive the whole roll-up pipeline —
scraper delta, window merge, fold-up, trailing queries — so an operator
can jump from "p99 is burning" to the exact retained trace that burned
it. Zero-cost when unused: no exemplar dict is ever allocated unless an
exemplar is recorded.
"""

import pytest

from repro.sim import Simulator
from repro.sim.stats import LogHistogram
from repro.telemetry.metrics import Telemetry


class TestLogHistogramExemplars:
    def test_no_allocation_without_exemplars(self):
        hist = LogHistogram("h")
        hist.record(1.0)
        hist.record(2.0, count=3)
        assert hist.exemplars is None
        assert hist.exemplar_entries() == []

    def test_record_attaches_to_bucket(self):
        hist = LogHistogram("h")
        hist.record(10.0, exemplar=42)
        entries = hist.exemplar_entries()
        assert len(entries) == 1
        upper, trace_id, value = entries[0]
        assert trace_id == 42
        assert value == 10.0
        assert upper >= 10.0

    def test_newer_observation_wins_the_bucket(self):
        hist = LogHistogram("h")
        hist.record(10.0, exemplar=1)
        hist.record(10.1, exemplar=2)  # same log bucket
        entries = hist.exemplar_entries()
        assert len(entries) == 1
        assert entries[0][1] == 2

    def test_distinct_buckets_keep_distinct_exemplars(self):
        hist = LogHistogram("h")
        hist.record(1.0, exemplar=1)
        hist.record(1000.0, exemplar=2)
        assert [entry[1] for entry in hist.exemplar_entries()] == [1, 2]

    def test_zero_values_carry_no_exemplar(self):
        hist = LogHistogram("h")
        hist.record(0.0, exemplar=9)
        assert hist.exemplars is None

    def test_merge_carries_exemplars_incoming_wins(self):
        left = LogHistogram("h")
        left.record(10.0, exemplar=1)
        left.record(500.0, exemplar=7)
        right = LogHistogram("h")
        right.record(10.2, exemplar=2)
        left.merge(right)
        by_trace = {entry[1] for entry in left.exemplar_entries()}
        assert by_trace == {2, 7}  # right's 2 displaced left's 1

    def test_merge_into_exemplarless_histogram(self):
        left = LogHistogram("h")
        left.record(3.0)
        right = LogHistogram("h")
        right.record(10.0, exemplar=5)
        left.merge(right)
        assert [entry[1] for entry in left.exemplar_entries()] == [5]

    def test_copy_preserves_exemplars(self):
        hist = LogHistogram("h")
        hist.record(10.0, exemplar=3)
        dup = hist.copy()
        assert dup.exemplar_entries() == hist.exemplar_entries()
        # And they are independent.
        dup.record(10.1, exemplar=4)
        assert hist.exemplar_entries() != dup.exemplar_entries()


class TestExemplarPipeline:
    @pytest.fixture
    def telemetry(self):
        sim = Simulator()
        return Telemetry(sim, scrape_interval_s=5.0)

    def test_thistogram_observe_threads_trace_id(self, telemetry):
        hist = telemetry.histogram("latency_s", "latency")
        hist.observe(2.0, trace_id=77)
        assert [entry[1] for entry in hist.hist.exemplar_entries()] == [77]

    def test_scraper_delta_carries_only_grown_buckets(self, telemetry):
        hist = telemetry.histogram("latency_s", "latency")
        hist.observe(2.0, trace_id=1)
        telemetry.scrape_now()
        # Next aligned window: a new bucket grows; the old one does not,
        # so its (stale) exemplar must not re-enter the fresh window.
        telemetry.sim._now += 60.0
        hist.observe(500.0, trace_id=2)
        telemetry.scrape_now()
        series = telemetry.rollups["latency_s"]
        windows = series.windows(level=0, include_open=True)
        assert len(windows) == 2
        first = windows[0].hist.exemplar_entries()
        second = windows[1].hist.exemplar_entries()
        assert [entry[1] for entry in first] == [1]
        assert [entry[1] for entry in second] == [2]  # not 1: bucket unchanged

    def test_exemplar_survives_trailing_merge(self, telemetry):
        hist = telemetry.histogram("latency_s", "latency")
        for index in range(4):
            hist.observe(10.0 * (index + 1), trace_id=100 + index)
            telemetry.sim._now += 5.0
            telemetry.scrape_now()
        series = telemetry.rollups["latency_s"]
        trailing = series.trailing(60.0, now=telemetry.sim.now)
        traces = {entry[1] for entry in trailing.hist.exemplar_entries()}
        # Every distinct bucket's exemplar survived the window merge.
        assert {100, 101, 102, 103} <= traces

    def test_exemplar_survives_fold_up(self):
        from repro.telemetry.rollup import RollupSeries

        # Tight retention so level-0 folds into level-1 within a few
        # windows: 4 x 1 s fine, then 4 x 4 s coarse.
        series = RollupSeries("latency_s", "histogram",
                              retention=((1.0, 4), (4.0, 4)))
        for index in range(12):
            delta = LogHistogram("latency_s")
            delta.record(25.0, exemplar=index)
            series.absorb_histogram(float(index), delta)
        folded = series.windows(level=1)
        assert folded  # fold-up actually happened
        traces = [
            entry[1]
            for window in folded
            for entry in window.hist.exemplar_entries()
        ]
        assert traces  # an exemplar survived the fold
        assert all(trace_id < 12 for trace_id in traces)


class TestNullPathStaysFree:
    def test_null_telemetry_observe_accepts_trace_id(self):
        from repro.telemetry.metrics import NULL_TELEMETRY

        NULL_TELEMETRY.histogram("x", "y").observe(1.0, trace_id=5)  # must not raise
