"""Metric families, labels, probes, and the null telemetry twin."""

import pytest

from repro.sim.kernel import Simulator
from repro.telemetry.metrics import (
    NULL_METRIC,
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    format_metric_id,
)


@pytest.fixture
def telemetry():
    return Telemetry(Simulator())


class TestFamilies:
    def test_same_name_same_labels_shares_child(self, telemetry):
        a = telemetry.counter("reqs_total", host="h1")
        b = telemetry.counter("reqs_total", host="h1")
        assert a is b
        a.add(2.0)
        assert b.value == 2.0

    def test_distinct_labels_distinct_children(self, telemetry):
        a = telemetry.counter("reqs_total", host="h1")
        b = telemetry.counter("reqs_total", host="h2")
        assert a is not b
        family = telemetry.families["reqs_total"]
        assert len(family.children()) == 2

    def test_label_order_is_canonical(self, telemetry):
        a = telemetry.gauge("depth", zone="z1", host="h1")
        b = telemetry.gauge("depth", host="h1", zone="z1")
        assert a is b

    def test_kind_conflict_rejected(self, telemetry):
        telemetry.counter("reqs_total")
        with pytest.raises(ValueError, match="already registered as counter"):
            telemetry.gauge("reqs_total")

    def test_counter_rejects_negative_and_nonfinite(self, telemetry):
        counter = telemetry.counter("reqs_total")
        with pytest.raises(ValueError):
            counter.add(-1.0)
        with pytest.raises(ValueError):
            counter.add(float("nan"))

    def test_gauge_rejects_nonfinite(self, telemetry):
        gauge = telemetry.gauge("depth")
        with pytest.raises(ValueError):
            gauge.set(float("inf"))
        gauge.set(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0

    def test_histogram_observe(self, telemetry):
        hist = telemetry.histogram("latency_s")
        hist.observe(0.5)
        hist.observe(2.0)
        assert hist.hist.count == 2


class TestMetricIds:
    def test_format_without_labels(self):
        assert format_metric_id("reqs_total", ()) == "reqs_total"

    def test_format_with_labels(self):
        labels = (("host", "h1"), ("zone", "z1"))
        assert format_metric_id("reqs_total", labels) == 'reqs_total{host="h1",zone="z1"}'


class TestProbes:
    def test_probe_reads_live_state(self, telemetry):
        state = {"level": 0.25}
        probe = telemetry.probe("util", lambda: state["level"])
        assert probe.value == 0.25
        state["level"] = 0.75
        assert probe.value == 0.75
        assert telemetry.probes == [probe]


class TestNullTelemetry:
    def test_singleton_metric_everywhere(self):
        assert NULL_TELEMETRY.counter("a", host="h") is NULL_METRIC
        assert NULL_TELEMETRY.gauge("b") is NULL_METRIC
        assert NULL_TELEMETRY.histogram("c") is NULL_METRIC

    def test_mutations_are_noops(self):
        NULL_METRIC.add(5.0)
        NULL_METRIC.set(1.0)
        NULL_METRIC.observe(2.0)
        assert NULL_METRIC.value == 0.0

    def test_registrations_dropped(self):
        NULL_TELEMETRY.probe("p", lambda: 1.0)
        NULL_TELEMETRY.watch_registry(object())
        assert NULL_TELEMETRY.probes == []
        assert NULL_TELEMETRY.rollups == {}
        assert NULL_TELEMETRY.series("p") is None
        assert NULL_TELEMETRY.series_matching("") == {}

    def test_lifecycle_is_inert(self):
        assert NULL_TELEMETRY.start() is NULL_TELEMETRY
        NULL_TELEMETRY.stop()
        NULL_TELEMETRY.scrape_now()
        NULL_TELEMETRY.add_rule(None)
        assert NULL_TELEMETRY.alerts == ()

    def test_enabled_flags(self):
        assert Telemetry.enabled is True
        assert NullTelemetry.enabled is False


def test_rejects_nonpositive_scrape_interval():
    with pytest.raises(ValueError):
        Telemetry(Simulator(), scrape_interval_s=0.0)
