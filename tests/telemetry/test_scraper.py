"""Scraper behavior: delta sampling, cadence, watched registries, bounds."""

import pytest

from repro.sim.kernel import Simulator
from repro.sim.stats import MetricsRegistry
from repro.telemetry.metrics import Telemetry


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def telemetry(sim):
    return Telemetry(sim, scrape_interval_s=5.0)


def test_counter_scraped_as_delta(telemetry):
    counter = telemetry.counter("reqs_total")
    counter.add(3.0)
    telemetry.scrape_now()
    counter.add(7.0)
    telemetry.scrape_now()
    series = telemetry.series("reqs_total")
    window = series.latest()
    # Both scrapes land in one aligned window: deltas 3 then 7.
    assert window.count == 2
    assert window.sum == 10.0
    assert window.last == 7.0


def test_gauge_scraped_as_level(telemetry):
    gauge = telemetry.gauge("depth")
    gauge.set(4.0)
    telemetry.scrape_now()
    gauge.set(2.0)
    telemetry.scrape_now()
    window = telemetry.series("depth").latest()
    assert window.max == 4.0
    assert window.last == 2.0


def test_probe_sampled_each_scrape(telemetry):
    state = {"v": 1.0}
    telemetry.probe("util", lambda: state["v"], host="h1")
    telemetry.scrape_now()
    state["v"] = 3.0
    telemetry.scrape_now()
    series = telemetry.series("util", host="h1")
    assert series is not None
    assert series.latest().count == 2
    assert series.last_value() == 3.0


def test_histogram_scraped_as_bucket_delta(telemetry):
    hist = telemetry.histogram("latency_s")
    hist.observe(1.0)
    hist.observe(2.0)
    telemetry.scrape_now()
    hist.observe(4.0)
    telemetry.scrape_now()
    window = telemetry.series("latency_s").latest()
    assert window.count == 3
    assert window.sum == pytest.approx(7.0)
    assert window.hist.count == 3
    # The merged window sketch equals the cumulative one bucket-for-bucket.
    assert window.hist._buckets == hist.hist._buckets


def test_unchanged_histogram_not_resampled(telemetry):
    hist = telemetry.histogram("latency_s")
    hist.observe(1.0)
    telemetry.scrape_now()
    telemetry.scrape_now()  # no new observations
    window = telemetry.series("latency_s").latest()
    assert window.count == 1


def test_watched_registry_scraped_with_labels(sim, telemetry):
    registry = MetricsRegistry(sim, prefix="vc-1")
    rows = registry.counter("stats.rows")
    queue = registry.gauge("queue")
    seen = registry.latency("call")
    telemetry.watch_registry(registry, component="statsd")
    rows.add(10.0)
    queue.set(3.0)
    seen.record(0.5)
    telemetry.scrape_now()

    assert telemetry.series("vc-1.stats.rows", component="statsd").latest().sum == 10.0
    assert telemetry.series("vc-1.queue", component="statsd").last_value() == 3.0
    # Latency recorders contribute their count as a counter delta.
    assert telemetry.series("vc-1.call:count", component="statsd").latest().sum == 1.0
    # The registry itself is only read.
    assert rows.value == 10.0


def test_scraper_runs_on_cadence(sim, telemetry):
    counter = telemetry.counter("ticks_total")

    def workload():
        for _ in range(20):
            counter.add()
            yield sim.timeout(1.0)

    sim.spawn(workload(), name="load")
    telemetry.start(until=20.0)
    sim.run(until=30.0)
    # Scrapes at t=5,10,15,20 (cadence 5 s, stop after until).
    assert telemetry.scraper.scrapes == 4
    series = telemetry.series("ticks_total")
    assert sum(window.sum for window in series.windows()) == 20.0


def test_scraper_start_twice_rejected(telemetry):
    telemetry.start(until=1.0)
    with pytest.raises(RuntimeError):
        telemetry.start()


def test_rollup_store_memory_bounded(sim):
    telemetry = Telemetry(
        sim, scrape_interval_s=5.0, retention=((10.0, 3), (50.0, 2))
    )
    counter = telemetry.counter("reqs_total")

    def workload():
        while True:
            counter.add()
            yield sim.timeout(1.0)

    sim.spawn(workload(), name="load")
    telemetry.start()
    sim.run(until=5000.0)
    series = telemetry.series("reqs_total")
    assert telemetry.scraper.scrapes >= 900
    # 3 level-0 + 2 level-1 + open + agg — far less than one per scrape.
    assert series.total_windows() <= 3 + 2 + 2
