"""Exporters and the text dashboard: format checks over a tiny run."""

import json

import pytest

from repro.sim.kernel import Simulator
from repro.sim.stats import MetricsRegistry
from repro.telemetry.dashboard import bar, render_dashboard, sparkline
from repro.telemetry.export import (
    prometheus_text,
    rollups_jsonl,
    write_alerts,
    write_prometheus,
    write_rollups,
)
from repro.telemetry.metrics import Telemetry


@pytest.fixture
def telemetry():
    sim = Simulator()
    t = Telemetry(sim, scrape_interval_s=5.0)
    counter = t.counter("reqs_total", help="requests", host="h1")
    gauge = t.gauge("cpu_utilization")
    hist = t.histogram("latency_s")
    t.probe("queue_depth", lambda: 7.0)
    registry = MetricsRegistry(sim, prefix="vc")
    registry.counter("rows").add(12.0)
    registry.latency("call").record(0.25)
    t.watch_registry(registry, component="statsd")
    counter.add(5.0)
    gauge.set(0.4)
    for value in (0.1, 0.2, 0.8):
        hist.observe(value)
    t.scrape_now()
    return t


class TestPrometheus:
    def test_families_and_probes_rendered(self, telemetry):
        text = prometheus_text(telemetry)
        assert "# HELP reqs_total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{host="h1"} 5' in text
        assert "cpu_utilization 0.4" in text
        assert "queue_depth 7" in text

    def test_histogram_is_cumulative_with_inf_bucket(self, telemetry):
        lines = prometheus_text(telemetry).splitlines()
        buckets = [line for line in lines if line.startswith("latency_s_bucket")]
        assert buckets[-1].startswith('latency_s_bucket{le="+Inf"} 3')
        counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
        assert counts == sorted(counts)  # cumulative
        assert "latency_s_count 3" in lines

    def test_watched_registry_rendered(self, telemetry):
        text = prometheus_text(telemetry)
        assert 'vc_rows{component="statsd"} 12' in text
        # Latency recorders render as summaries.
        assert 'vc_call_seconds{component="statsd",quantile="0.99"}' in text
        assert 'vc_call_seconds_count{component="statsd"} 1' in text


class TestJsonl:
    def test_rollup_lines_parse_and_cover_series(self, telemetry):
        rows = [json.loads(line) for line in rollups_jsonl(telemetry)]
        metrics = {row["metric"] for row in rows}
        assert 'reqs_total{host="h1"}' in metrics
        assert "cpu_utilization" in metrics
        counter_row = next(r for r in rows if r["metric"].startswith("reqs_total"))
        assert counter_row["kind"] == "counter"
        assert "rate" in counter_row
        assert counter_row["sum"] == 5.0

    def test_writers_create_files(self, telemetry, tmp_path):
        prom = write_prometheus(telemetry, tmp_path / "out" / "metrics.prom")
        rollups = write_rollups(telemetry, tmp_path / "rollups.jsonl")
        alerts = write_alerts(telemetry, tmp_path / "alerts.jsonl")
        assert prom.read_text().endswith("\n")
        assert all(json.loads(line) for line in rollups.read_text().splitlines())
        assert alerts.exists()  # empty timeline -> empty file


class TestDashboard:
    def test_sparkline_and_bar_shapes(self):
        assert len(sparkline([1.0, 2.0, 3.0], width=10)) == 10
        assert sparkline([], width=5) == " " * 5
        assert bar(0.5, width=10) == "[#####-----]"
        assert bar(2.0, width=4) == "[####]"

    def test_dashboard_sections(self, telemetry):
        text = render_dashboard(telemetry)
        assert "== repro top @ t=0.0s" in text
        assert "-- utilization --" in text
        assert "cpu_utilization" in text
        assert "-- queue depth --" in text
        assert "-- rates (per window) --" in text
        assert "(none fired)" in text

    def test_dashboard_federation_section(self):
        sim = Simulator()
        t = Telemetry(sim, scrape_interval_s=5.0)
        counters = {"vc-1": 4.0, "vc-2": 0.0}
        for shard in counters:
            t.probe("federation_steals", lambda s=shard: counters[s], shard=shard)
            t.probe("federation_spills", lambda s=shard: 2.0 if s == "vc-2" else 0.0,
                    shard=shard)
            t.probe("federation_reroutes", lambda: 1.0, shard=shard)
            t.probe("federation_remote_completions", lambda s=shard: counters[s],
                    shard=shard)
        t.scrape_now()
        text = render_dashboard(t)
        assert "-- federation (per shard) --" in text
        lines = [line for line in text.splitlines() if line.strip().startswith("vc-")]
        assert len(lines) == 2
        assert "steals=4" in lines[0] and "spills=0" in lines[0]
        assert "spills=2" in lines[1] and "remote_completions=0" in lines[1]

    def test_dashboard_no_federation_section_without_probes(self, telemetry):
        assert "-- federation" not in render_dashboard(telemetry)
