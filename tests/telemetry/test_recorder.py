"""The incident flight recorder: bundles, triggers, round-trips, nulls.

The recorder subscribes to the SLO monitor's fire hook (and a server's
crash hook) and snapshots an IncidentBundle — alerts, rule-referenced
metric windows with exemplars, retained span trees, bus stats, and the
triage verdict — as plain JSON. These tests drive it with a minimal
telemetry hub and a burning ratio rule; the chaos-harness integration is
exercised by R-X7.
"""

import pytest

from repro.sim.kernel import Simulator
from repro.telemetry import (
    NULL_RECORDER,
    FlightRecorder,
    IncidentBundle,
    read_incident_bundle,
    read_incident_bundles,
    render_dashboard,
    write_incident_bundle,
    write_incident_bundles,
)
from repro.telemetry.metrics import Telemetry
from repro.telemetry.recorder import TRIGGER_ALERT, TRIGGER_CRASH
from repro.telemetry.slo import BurnWindow, LatencyRule, RatioRule
from repro.tracing import RetentionPolicy, SampledTracer

WINDOW = BurnWindow(short_s=60.0, long_s=180.0, threshold=2.0)

GOOD = 'done_total{outcome="success"}'
BAD = 'done_total{outcome="error"}'


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def telemetry(sim):
    telemetry = Telemetry(sim, scrape_interval_s=5.0)
    telemetry.add_rule(
        RatioRule(
            name="goodput",
            objective=0.9,
            windows=(WINDOW,),
            bad_metric=BAD,
            total_metrics=(GOOD, BAD),
        )
    )
    return telemetry


def burn(telemetry, time, good=50.0, bad=50.0):
    """Land one window of outcome deltas hot enough to fire the rule."""
    telemetry.rollup(GOOD, "counter").record(time, good)
    telemetry.rollup(BAD, "counter").record(time, bad)


def fire(telemetry, now):
    telemetry.sim._now = now
    burn(telemetry, now)
    telemetry.monitor.evaluate(now)


class TestTriggers:
    def test_alert_snapshot(self, telemetry):
        recorder = FlightRecorder(telemetry).attach()
        fire(telemetry, 100.0)
        assert len(recorder.bundles) == 1
        bundle = recorder.bundles[0]
        assert bundle.trigger == TRIGGER_ALERT
        assert bundle.fired_at == 100.0
        assert bundle.alert_names == ["goodput"]
        # Both rule-referenced metrics landed recent/baseline windows.
        assert set(bundle.metrics) == {GOOD, BAD}
        assert bundle.metrics[BAD]["recent"]["count"] > 0

    def test_refractory_burst_merges_into_one_bundle(self, telemetry):
        telemetry.add_rule(
            RatioRule(
                name="second-rule",
                objective=0.9,
                windows=(WINDOW,),
                bad_metric=BAD,
                total_metrics=(GOOD, BAD),
            )
        )
        recorder = FlightRecorder(telemetry, refractory_s=60.0).attach()
        fire(telemetry, 100.0)
        # Two rules firing in one evaluate = two listener calls, merged.
        assert len(recorder.bundles) == 1
        assert set(recorder.bundles[0].alert_names) == {
            "goodput",
            "second-rule",
        }
        assert recorder.snapshots == 2  # rebuilt, not multiplied

    def test_separate_incidents_get_separate_bundles(self, telemetry):
        recorder = FlightRecorder(telemetry, refractory_s=60.0).attach()
        fire(telemetry, 100.0)
        # Resolve, then burn again far past the refractory window.
        telemetry.monitor.evaluate(400.0)
        fire(telemetry, 1000.0)
        assert len(recorder.bundles) == 2
        assert [b.fired_at for b in recorder.bundles] == [100.0, 1000.0]

    def test_bundle_list_is_bounded(self, telemetry):
        recorder = FlightRecorder(telemetry, refractory_s=1.0, max_bundles=3)
        recorder.attach()
        for index in range(6):
            now = 100.0 + index * 500.0
            fire(telemetry, now)
            telemetry.monitor.evaluate(now + 200.0)  # resolve in between
        assert len(recorder.bundles) == 3
        assert recorder.bundles[-1].fired_at == 100.0 + 5 * 500.0

    def test_crash_snapshot(self, telemetry):
        class FakeServer:
            name = "mgmt"
            crash_listeners: list = []

        server = FakeServer()
        recorder = FlightRecorder(telemetry).attach(server=server)
        assert server.crash_listeners
        server.crash_listeners[0](server, 55.0)
        assert len(recorder.bundles) == 1
        bundle = recorder.bundles[0]
        assert bundle.trigger == TRIGGER_CRASH
        assert bundle.alert_names == ["server-crash:mgmt"]


class TestBundleContents:
    def test_exemplars_and_retained_traces_linked(self, sim):
        telemetry = Telemetry(sim, scrape_interval_s=5.0)
        telemetry.add_rule(
            LatencyRule(
                name="latency",
                objective=0.95,
                metric="op_latency_s",
                threshold_s=1.0,
                windows=(WINDOW,),
            )
        )
        tracer = SampledTracer(sim, RetentionPolicy(span_budget=64))
        recorder = FlightRecorder(telemetry, tracer=tracer).attach()
        hist = telemetry.histogram("op_latency_s", "op latency")
        # One slow errored trace, observed with its trace id as exemplar.
        root = tracer.start_trace("op", phase="task")
        sim._now = 30.0
        root.finish(error="Timeout")
        hist.observe(30.0, trace_id=root.context.trace_id)
        # The scrape runs the monitor: the rule burns, the alert fires,
        # and the recorder snapshots inside the same evaluate step.
        telemetry.scrape_now()
        assert len(recorder.bundles) == 1
        bundle = recorder.bundles[0]
        trace_ids = {entry["trace_id"] for entry in bundle.exemplars}
        assert root.context.trace_id in trace_ids
        # The exemplar-named tree rode into the trace section.
        assert root.context.trace_id in bundle.trace_ids
        assert bundle.spans_overlapping(0.0, 30.0) >= 1
        # And the sampler's accounting is embedded.
        assert bundle.retention["retained_trees"] == 1

    def test_trace_section_empty_for_plain_tracer(self, telemetry):
        recorder = FlightRecorder(telemetry).attach()
        fire(telemetry, 100.0)
        bundle = recorder.bundles[0]
        assert bundle.traces == []
        assert bundle.retention is None
        assert bundle.verdict is None
        assert bundle.bus == {}


class TestRoundTrip:
    def _bundle(self, telemetry):
        recorder = FlightRecorder(telemetry).attach()
        fire(telemetry, 100.0)
        return recorder.bundles[0]

    def test_dict_round_trip_exact(self, telemetry):
        bundle = self._bundle(telemetry)
        clone = IncidentBundle.from_dict(bundle.to_dict())
        assert clone == bundle
        assert clone.to_dict() == bundle.to_dict()

    def test_from_dict_rejects_missing_fields(self, telemetry):
        payload = self._bundle(telemetry).to_dict()
        del payload["metrics"]
        with pytest.raises(ValueError, match="missing fields"):
            IncidentBundle.from_dict(payload)

    def test_file_round_trip(self, telemetry, tmp_path):
        bundle = self._bundle(telemetry)
        path = write_incident_bundle(bundle, tmp_path / "incident.json")
        assert read_incident_bundle(path) == bundle

    def test_jsonl_round_trip(self, telemetry, tmp_path):
        bundle = self._bundle(telemetry)
        path = write_incident_bundles([bundle, bundle], tmp_path / "b.jsonl")
        assert read_incident_bundles(path) == [bundle, bundle]


class TestRendering:
    def test_dashboard_drilldown_section(self, telemetry):
        recorder = FlightRecorder(telemetry).attach()
        fire(telemetry, 100.0)
        text = render_dashboard(telemetry, recorder=recorder)
        assert "incident bundles (1)" in text
        assert "goodput" in text

    def test_dashboard_without_recorder_unchanged(self, telemetry):
        fire(telemetry, 100.0)
        assert "incident bundles" not in render_dashboard(telemetry)
        assert "incident bundles" not in render_dashboard(
            telemetry, recorder=NULL_RECORDER
        )


class TestNullRecorder:
    def test_null_recorder_is_inert(self, telemetry):
        before = len(telemetry.monitor.listeners)
        recorder = NULL_RECORDER.attach()
        assert recorder is NULL_RECORDER
        assert len(telemetry.monitor.listeners) == before
        fire(telemetry, 100.0)
        assert NULL_RECORDER.bundles == ()
        assert NULL_RECORDER.snapshots == 0
        assert NULL_RECORDER.render() == []
        assert NULL_RECORDER.is_null
