#!/usr/bin/env python3
"""Availability under churn: failures, HA restarts, DRS, and maintenance.

Builds a loaded cluster, then exercises the availability machinery:

1. a host fails → the HA manager restarts its VMs elsewhere (a power-on
   storm through the control plane);
2. the DRS balancer smooths the resulting skew with live migrations;
3. the failed host comes back and is rotated through maintenance mode
   (evacuate → fence → unfence), the rolling-patch routine clouds run.

Everything is ordinary management-plane work — the example prints how
many tasks each stage cost and where the time went.

Usage::

    python examples/failure_recovery.py [--vms N] [--seed N]
"""

import argparse

from repro.analysis.report import render_table
from repro.cloud import HAManager, LoadBalancer
from repro.core.experiments import StormRig
from repro.datacenter import PowerState, VirtualDisk, VirtualMachine
from repro.operations import EnterMaintenance, ExitMaintenance
from repro.storage.linked_clone import create_linked_backing


def seed_residents(rig, per_host):
    anchor = rig.template.disks[0].backing
    count = 0
    for host in rig.hosts:
        for _ in range(per_host):
            count += 1
            vm = rig.server.inventory.create(
                VirtualMachine, name=f"res-{count}", power_state=PowerState.ON
            )
            backing = create_linked_backing(anchor, rig.datastores[count % 4])
            vm.attach_disk(
                VirtualDisk(label="d0", backing=backing, provisioned_gb=40.0)
            )
            vm.place_on(host)


def tasks_since(rig, mark):
    return len(rig.server.tasks.tasks) - mark


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--vms", type=int, default=8, help="VMs per host")
    parser.add_argument("--seed", type=int, default=1)
    args = parser.parse_args()

    import random

    from repro.cloud import PlacementEngine

    rig = StormRig(seed=args.seed, hosts=6, datastores=4)
    seed_residents(rig, args.vms)
    # Random restart placement (a panicked HA pass), so DRS has work to do.
    ha = HAManager(
        rig.server,
        rig.cluster,
        placement=PlacementEngine(policy="random", rng=random.Random(args.seed)),
    )
    rows = []

    # Stage 1: host failure and HA restart storm.
    victim = rig.hosts[0]
    mark = len(rig.server.tasks.tasks)
    outcome = {}

    def fail():
        outcome.update((yield from ha.fail_host(victim)))

    start = rig.sim.now
    rig.sim.run(until=rig.sim.spawn(fail()))
    rows.append(
        [
            "host failure + HA restart",
            tasks_since(rig, mark),
            f"{rig.sim.now - start:.1f}",
            f"restarted {outcome['restarted']}, lost {outcome['lost']}",
        ]
    )

    # Stage 2: DRS smooths the skew the restarts created.
    balancer = LoadBalancer(
        rig.server, rig.cluster, imbalance_threshold=1, max_moves_per_round=4
    )
    mark = len(rig.server.tasks.tasks)
    start = rig.sim.now

    def rebalance():
        moved = 1
        while moved:
            moved = yield from balancer.rebalance_once()

    rig.sim.run(until=rig.sim.spawn(rebalance()))
    rows.append(
        [
            "DRS rebalance",
            tasks_since(rig, mark),
            f"{rig.sim.now - start:.1f}",
            f"imbalance now {balancer.imbalance()}",
        ]
    )

    # Stage 3: the failed host returns; rotate a *loaded* host through
    # maintenance (the rolling-patch routine).
    ha.recover_host(victim)
    patched = max(rig.hosts, key=lambda host: len(host.vms))
    mark = len(rig.server.tasks.tasks)
    start = rig.sim.now

    def rolling():
        process = rig.server.submit(
            EnterMaintenance(patched, targets=[h for h in rig.hosts if h is not patched])
        )
        yield process
        process = rig.server.submit(ExitMaintenance(patched))
        yield process

    rig.sim.run(until=rig.sim.spawn(rolling()))
    rows.append(
        [
            "maintenance rotation",
            tasks_since(rig, mark),
            f"{rig.sim.now - start:.1f}",
            f"host state {patched.state.value}",
        ]
    )

    print(
        render_table(
            ["stage", "management tasks", "elapsed (s)", "outcome"],
            rows,
            title=f"Availability workflow costs ({args.vms} VMs/host, 6 hosts)",
        )
    )
    restart_p95 = ha.metrics.latency("restart_latency").percentile(0.95)
    print(f"\nHA restart p95: {restart_p95:.1f}s — all of it control-plane work.")


if __name__ == "__main__":
    main()
