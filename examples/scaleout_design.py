#!/usr/bin/env python3
"""Design response: scale the control plane out, or tune it?

The paper closes by arguing that cloud provisioning rates "may influence
virtualized datacenter design". This example explores the two design
responses our model supports:

1. **Tuning one server** — the R-T3 ablation knobs (database batching,
   more op threads, more DB connections, coarse vs fine locking).
2. **Sharding** — running N smaller management servers side by side
   (R-F9), each owning a slice of the hosts.

Usage::

    python examples/scaleout_design.py [--clones N] [--seed N]
"""

import argparse

from repro.analysis.report import render_table
from repro.controlplane import ControlPlaneConfig
from repro.core.experiments import StormRig, experiment_f9_shards


def tuning_study(clones: int, seed: int) -> None:
    variants = [
        ("baseline", ControlPlaneConfig()),
        ("db batching", ControlPlaneConfig(db_batching=True)),
        ("8 op threads", ControlPlaneConfig(cpu_workers=8)),
        ("coarse locks", ControlPlaneConfig(lock_granularity="coarse")),
        ("everything", ControlPlaneConfig(db_batching=True, cpu_workers=8, db_connections=32)),
    ]
    rows = []
    base = None
    for label, config in variants:
        rig = StormRig(seed=seed, hosts=16, datastores=4, config=config)
        outcome = rig.closed_loop_storm(clones, concurrency=32, linked=True)
        tph = outcome["throughput_per_hour"]
        base = base or tph
        rows.append([label, f"{tph:.0f}", f"{tph / base:.2f}x"])
    print(render_table(["variant", "clones/hour", "vs baseline"], rows,
                       title="Tuning one management server"))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clones", type=int, default=96)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    tuning_study(args.clones, args.seed)
    print()
    result = experiment_f9_shards(seed=args.seed, quick=True)
    print(result.render())
    print(
        "\nReading: single-server tuning helps until the next resource "
        "saturates; sharding multiplies every control-plane resource at "
        "once and scales provisioning nearly linearly."
    )


if __name__ == "__main__":
    main()
