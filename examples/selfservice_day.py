#!/usr/bin/env python3
"""A day in a self-service cloud, with elastic reconfiguration.

Drives tenants against a CloudDirector for a (configurable) simulated day
while an ElasticityPolicy watches capacity and grows the cluster — the
mechanism behind the paper's claim 4: provisioning rates drag previously
infrequent reconfiguration operations (add host, add datastore, rescans)
into the steady-state management workload.

Usage::

    python examples/selfservice_day.py [--hours H] [--tenants N] [--seed N]
"""

import argparse

from repro.analysis.report import render_series, render_table
from repro.cloud import (
    Catalog,
    CatalogItem,
    CloudDirector,
    DeployRequest,
    ElasticityPolicy,
    Organization,
    PlacementEngine,
    SparePool,
)
from repro.controlplane import ManagementServer
from repro.datacenter import Cluster, Datacenter, Datastore, Host, Network
from repro.datacenter.templates import MEDIUM_LINUX, SMALL_LINUX, TemplateLibrary
from repro.sim import RandomStreams, Simulator
from repro.workloads.arrivals import DiurnalPoisson


def build(seed: int, tenants: int):
    sim = Simulator()
    streams = RandomStreams(seed)
    server = ManagementServer(sim, streams.spawn("server"))
    inventory = server.inventory
    datacenter = inventory.create(Datacenter, name="dc")
    cluster = inventory.create(Cluster, name="tenant-cluster")
    datacenter.add_cluster(cluster)
    network = inventory.create(Network, name="tenant-net")
    datastores = [
        inventory.create(Datastore, name=f"lun{i}", capacity_gb=30_000.0)
        for i in range(4)
    ]
    for index in range(8):
        host = inventory.create(Host, name=f"esx{index:02d}")
        cluster.add_host(host)
        for datastore in datastores:
            host.mount(datastore)
        host.attach_network(network)
        server.adopt_host(host)
    library = TemplateLibrary(inventory)
    library.publish(SMALL_LINUX, datastores[0])
    library.publish(MEDIUM_LINUX, datastores[1])
    catalog = Catalog("public")
    catalog.add(CatalogItem("small", SMALL_LINUX.name, linked=True))
    catalog.add(CatalogItem("medium", MEDIUM_LINUX.name, linked=True))
    orgs = [Organization(f"tenant{i:02d}", quota_vms=500) for i in range(tenants)]
    director = CloudDirector(
        server, cluster, library, catalog, placement=PlacementEngine()
    )
    policy = ElasticityPolicy(
        server,
        cluster,
        SparePool(
            hosts=[Host(entity_id=f"host-sp{i}", name=f"spare{i}") for i in range(6)]
        ),
        check_interval_s=900.0,
        vms_per_host_high=12.0,
        datastore_free_fraction_low=0.2,
    )
    return sim, streams, server, director, orgs, policy, cluster


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=24.0)
    parser.add_argument("--tenants", type=int, default=6)
    parser.add_argument("--seed", type=int, default=3)
    args = parser.parse_args()

    sim, streams, server, director, orgs, policy, cluster = build(
        args.seed, args.tenants
    )
    horizon = args.hours * 3600.0
    policy.start(until=horizon)
    arrivals = DiurnalPoisson(base_rate=1 / 120.0, amplitude=0.7)
    rng = streams.stream("tenant-arrivals")

    def tenant_loop():
        index = 0
        while True:
            next_time = arrivals.next_arrival(sim.now, rng)
            if next_time >= horizon:
                return
            yield sim.timeout(next_time - sim.now)
            org = orgs[index % len(orgs)]
            item = "small" if rng.random() < 0.6 else "medium"
            request = DeployRequest(
                org=org,
                item=director.catalog.get(item),
                vm_count=1 + rng.randrange(4),
                vapp_name=f"vapp-{index}",
            )
            index += 1

            def deploy(req=request):
                try:
                    yield from director.deploy(req)
                except Exception:
                    pass

            sim.spawn(deploy())

    sim.spawn(tenant_loop(), name="tenants")
    sim.run(until=horizon)
    sim.run()  # drain

    deploys = director.metrics.counter("deploy_requests").value
    vms = director.metrics.counter("vm_requests").value
    print(
        render_table(
            ["metric", "value"],
            [
                ["simulated hours", f"{args.hours:.0f}"],
                ["vApp deploy requests", f"{deploys:.0f}"],
                ["VMs requested", f"{vms:.0f}"],
                ["deploy p50 (s)", f"{director.deploy_latency_p(0.5):.1f}"],
                ["deploy p95 (s)", f"{director.deploy_latency_p(0.95):.1f}"],
                ["cluster hosts (started with 8)", len(cluster.hosts)],
                ["elastic add-host actions", f"{policy.metrics.counter('add_host').value:.0f}"],
                ["elastic add-datastore actions", f"{policy.metrics.counter('add_datastore').value:.0f}"],
                ["management tasks completed", len(server.tasks.succeeded())],
            ],
            title="A day of self-service",
        )
    )
    if policy.actions:
        print("\nElastic reconfiguration timeline (hour, action):")
        for when, action in policy.actions:
            print(f"  {when / 3600.0:6.1f}h  {action}")
    depth = server.tasks.queue_depth_series()
    if depth:
        print()
        print(render_series("task queue depth", depth, x_name="t (s)", y_name="depth"))


if __name__ == "__main__":
    main()
