#!/usr/bin/env python3
"""What-if replay: re-run a recorded workload against a redesigned plane.

The workflow the paper's conclusions invite operators to run:

1. record a measurement window of a live cloud (here: simulate one; in
   production you'd parse management-server logs into TraceRecords);
2. replay the identical operation arrivals against candidate designs —
   more op threads, database write batching, both;
3. compare what tenants would have experienced, operation by operation.

Usage::

    python examples/whatif_replay.py [--hours H] [--seed N]
"""

import argparse
import dataclasses

from repro.analysis.comparison import comparison_report
from repro.controlplane import ControlPlaneConfig
from repro.sim import RandomStreams, Simulator
from repro.workloads import CLOUD_A, WorkloadDriver, replay_against
from repro.workloads.arrivals import Poisson


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--hours", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()

    profile = dataclasses.replace(
        CLOUD_A,
        hosts=8,
        datastores=4,
        orgs=4,
        initial_vms_per_host=4,
        arrival_factory=lambda: Poisson(rate=0.3),
    )

    print(f"Recording {args.hours:.1f}h of {profile.name} "
          f"(seed {args.seed})...")
    sim = Simulator()
    recorder = WorkloadDriver(sim, RandomStreams(args.seed), profile)
    recorder.run(args.hours * 3600.0)
    recorded = recorder.trace()
    print(f"  {len(recorded)} operations recorded.\n")

    candidates = [
        ("baseline (replayed)", ControlPlaneConfig()),
        ("db batching", ControlPlaneConfig(db_batching=True)),
        ("12 op threads", ControlPlaneConfig(cpu_workers=12)),
        (
            "both",
            ControlPlaneConfig(cpu_workers=12, db_batching=True),
        ),
    ]
    baseline_trace = None
    for label, config in candidates:
        replayer = replay_against(
            recorded, profile, seed=args.seed + 1, config=config
        )
        trace = replayer.trace()
        if baseline_trace is None:
            baseline_trace = trace
            print(f"replayed {replayer.replayed} records against the baseline.\n")
            continue
        print(comparison_report(baseline_trace, trace, "baseline", label))
        print()

    print(
        "Reading: design changes that relieve the saturated control-plane "
        "resource shorten exactly the operations the paper says matter — "
        "without touching the storage plane."
    )


if __name__ == "__main__":
    main()
