#!/usr/bin/env python3
"""Quickstart: profile the management workload of a self-service cloud.

Runs a four-hour measurement window against the CLOUD_A profile (a large
dev/test self-service cloud) and prints the full characterization report:
operation mix, per-operation latency, control-vs-data plane attribution,
control-plane utilization, and the arrival-rate series.

Usage::

    python examples/quickstart.py [--duration HOURS] [--seed N] [--profile NAME]
"""

import argparse

from repro import CloudManagementProfiler
from repro.workloads.profiles import ALL_PROFILES


def main() -> None:
    profiles_by_name = {profile.name: profile for profile in ALL_PROFILES}
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--duration", type=float, default=4.0, help="window in hours")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--profile",
        choices=sorted(profiles_by_name),
        default="cloud_a",
        help="which cloud setup to profile",
    )
    args = parser.parse_args()

    profile = profiles_by_name[args.profile]
    print(f"Profiling {profile.name}: {profile.description}\n")
    profiler = CloudManagementProfiler(profile, seed=args.seed)
    result = profiler.run(duration=args.duration * 3600.0)
    print(result.report())

    print()
    bottleneck = result.server.bottleneck()
    print(
        f"Most-utilized control-plane resource over this window: {bottleneck}. "
        f"Skipped (no-target) operations: {sum(result.driver.skipped.values())}."
    )


if __name__ == "__main__":
    main()
