#!/usr/bin/env python3
"""Clone storm: reproduce the paper's headline asymmetry interactively.

Provisions the same number of VMs twice — once with full clones (bytes
proportional to disk size move through the storage plane) and once with
linked clones (no bytes move) — at increasing offered concurrency, and
shows where each mode saturates.

The expected shape (the paper's claim 3): full clones hit a *storage*
ceiling almost immediately; linked clones go orders of magnitude faster
and hit a *control-plane* ceiling instead — visible as CPU/database
utilization approaching 1.0 while the storage plane sits idle.

Usage::

    python examples/clone_storm.py [--clones N] [--hosts N] [--seed N]
"""

import argparse

from repro.analysis.report import render_table
from repro.core.experiments import StormRig


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clones", type=int, default=64)
    parser.add_argument("--hosts", type=int, default=16)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    rows = []
    for linked in (False, True):
        mode = "linked" if linked else "full"
        for concurrency in (1, 8, 32):
            rig = StormRig(seed=args.seed, hosts=args.hosts, datastores=4)
            outcome = rig.closed_loop_storm(args.clones, concurrency, linked)
            snapshot = rig.server.utilization_snapshot()
            rows.append(
                [
                    mode,
                    concurrency,
                    f"{outcome['throughput_per_hour']:.0f}",
                    f"{outcome['latency_p50']:.1f}",
                    f"{outcome['bytes_written_gb']:.0f}",
                    f"{snapshot['cpu']:.2f}",
                    f"{snapshot['db']:.2f}",
                    rig.server.bottleneck(),
                ]
            )
    print(
        render_table(
            [
                "mode",
                "concurrency",
                "clones/hr",
                "p50 (s)",
                "GB moved",
                "cpu util",
                "db util",
                "bottleneck",
            ],
            rows,
            title=f"Clone storm: {args.clones} clones, {args.hosts} hosts",
        )
    )
    print(
        "\nReading: the full-clone rows stop improving once the per-datastore "
        "copy slots saturate the storage links; the linked rows keep scaling "
        "until the management server's CPU/database saturate — the control "
        "plane is now the limiting factor (the paper's central result)."
    )


if __name__ == "__main__":
    main()
